// Recorded performance baseline for the parallel/indexed core.
//
// Runs the synthesis and fault-campaign workloads under four execution
// modes and writes BENCH_perf.json:
//   * seed       — fast_path off, 1 thread: the scan-based seed code path
//                  (linear excited()/arc_on() scans, per-state cover
//                  evaluation, whole-netlist disabling checks);
//   * indexed    — fast_path on, 1 thread: excitation index + word-wide
//                  BitVec set algebra + fanout-narrowed checks;
//   * parallel-2 / parallel-8 — indexed plus the thread pool at 2 / 8
//                  workers (on a single-core host these measure pool
//                  overhead, not speedup; host_threads is recorded).
// The headline figure is the geometric-mean speedup of each mode against
// `seed` across all workloads, plus per-workload states/sec.
//
// Usage: perf_baseline [--smoke] [--out <path>] [--reps <n>] [--profile]
//                      [--obs-out <path>] [--trace-out <path>] [--force]
//   --smoke      small workloads + 1 repetition (the perf-smoke ctest label)
//   --out        JSON output path (default: BENCH_perf.json in the CWD)
//   --profile    instead of timing, run each workload once under wall-clock
//                tracing and dump its top-5 stage spans by self time plus
//                the wall critical path and the sg.store.* counters; the
//                gen ladder runs under both seed and indexed modes so the
//                states/sec cliff is attributable (see EXPERIMENTS.md)
//   --obs-out    also write the si::obs export of the untimed metrics pass
//                (refuses to overwrite an existing file without --force)
//   --trace-out  also write the untimed pass's span profile as
//                trace::profile_json — the bench/trace_diff input
//
// The timed section always runs with obs disabled — it measures the
// shipping configuration. A separate untimed pass then re-runs every
// workload once under tracing with the wall lane on and embeds the
// stable counters into the JSON under "metrics" — including per-stage
// tick-lane latency.<span>.p50/p95/p99 counters, deterministic and
// guarded by bench/obs_diff — plus real-nanosecond percentiles under
// "latency_wall_ns". A recorded baseline thus documents how much work
// the numbers represent and where the time went.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "si/bench_stgs/generators.hpp"
#include "si/bench_stgs/table1.hpp"
#include "si/gen/fuzz.hpp"
#include "si/gen/gen.hpp"
#include "si/obs/live.hpp"
#include "si/obs/obs.hpp"
#include "si/obs/report.hpp"
#include "si/obs/trace.hpp"
#include "si/sg/analysis.hpp"
#include "si/sg/from_stg.hpp"
#include "si/sg/regions.hpp"
#include "si/mc/requirement.hpp"
#include "si/mc/symbolic.hpp"
#include "si/synth/spec.hpp"
#include "si/synth/synthesize.hpp"
#include "si/util/parallel.hpp"
#include "si/verify/fault.hpp"
#include "si/verify/verifier.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct Mode {
    std::string name;
    bool fast_path;
    std::size_t threads;
};

struct Workload {
    std::string name;
    /// Runs once and returns the number of states processed (spec or
    /// composite), the unit of the states/sec column.
    std::function<std::uint64_t()> run;
};

struct Sample {
    double ms = 0;
    std::uint64_t states = 0;
};

double geomean(const std::vector<double>& xs) {
    if (xs.empty()) return 0;
    double log_sum = 0;
    for (const double x : xs) log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

// Runs `run` once under wall-clock tracing and prints the top-5 span
// names by wall self time (self, not inclusive, so rows sum to the run
// instead of double-counting parents), the wall critical path, and the
// sg.store.* counters — the attribution data behind the gen_scaling
// cliff analysis. All structured analysis comes from si::obs::trace;
// the old ad-hoc trace_tree text scraping is gone.
void profile_one(const std::string& label, const std::function<std::uint64_t()>& run) {
    si::obs::set_mode(si::obs::Mode::Trace);
    si::obs::reset();
    const std::uint64_t states = run();
    const auto snap = si::obs::trace::snapshot();
    const auto prof = si::obs::trace::profile(snap, si::obs::trace::Lane::Wall);
    const std::string critical = si::obs::trace::critical_path_text(snap,
                                                                    si::obs::trace::Lane::Wall);
    const std::string metrics = si::obs::metrics_text(false);
    si::obs::set_mode(si::obs::Mode::Off);

    std::vector<std::pair<std::string, si::obs::trace::Agg>> top(prof.by_name.begin(),
                                                                 prof.by_name.end());
    std::sort(top.begin(), top.end(), [](const auto& a, const auto& b) {
        if (a.second.wall_self != b.second.wall_self) return a.second.wall_self > b.second.wall_self;
        return a.first < b.first;
    });
    std::fprintf(stderr, "profile %-36s %llu states\n", label.c_str(),
                 static_cast<unsigned long long>(states));
    for (std::size_t i = 0; i < top.size() && i < 5; ++i)
        std::fprintf(stderr, "    %-24s %10.3f ms self  x%llu\n", top[i].first.c_str(),
                     static_cast<double>(top[i].second.wall_self) / 1e6,
                     static_cast<unsigned long long>(top[i].second.count));
    std::fprintf(stderr, "    %s", critical.c_str());
    for (std::size_t ls = 0; ls < metrics.size();) {
        std::size_t eol = metrics.find('\n', ls);
        if (eol == std::string::npos) eol = metrics.size();
        const std::string line = metrics.substr(ls, eol - ls);
        ls = eol + 1;
        if (line.find("sg.store.") != std::string::npos)
            std::fprintf(stderr, "    %s\n", line.c_str());
    }
}

} // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    bool force = false;
    bool profile = false;
    std::size_t reps = 3;
    std::string out_path = "BENCH_perf.json";
    std::string obs_out;
    std::string trace_out;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
            reps = 1;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
            reps = static_cast<std::size_t>(std::stoul(argv[++i]));
        } else if (std::strcmp(argv[i], "--obs-out") == 0 && i + 1 < argc) {
            obs_out = argv[++i];
        } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
            trace_out = argv[++i];
        } else if (std::strcmp(argv[i], "--force") == 0) {
            force = true;
        } else if (std::strcmp(argv[i], "--profile") == 0) {
            profile = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--out <path>] [--reps <n>] [--profile]"
                         " [--obs-out <path>] [--trace-out <path>] [--force]\n",
                         argv[0]);
            return 2;
        }
    }

    // Inputs are built once, outside the timed section, so every mode
    // times exactly the same work on exactly the same objects. Sizes are
    // chosen so the seed scan path's superlinear costs dominate: tiny
    // Table-1 circuits finish in microseconds and measure only noise.
    const si::sg::StateGraph synth_spec =
        si::sg::build_state_graph(smoke ? si::bench::make_tree(5, 2) : si::bench::make_tree(9, 4));
    const si::sg::StateGraph fork_join =
        si::sg::build_state_graph(si::bench::make_fork_join(smoke ? 3 : 10));
    const si::sg::StateGraph sequencer =
        si::sg::build_state_graph(si::bench::make_sequencer(smoke ? 3 : 8));
    const si::sg::StateGraph campaign_spec =
        si::sg::build_state_graph(si::bench::make_fork_join(smoke ? 3 : 6));
    si::util::set_num_threads(1);
    const si::synth::SynthesisResult campaign_target = si::synth::synthesize(campaign_spec);
    const si::synth::SynthesisResult suite_target = si::synth::synthesize(synth_spec);

    std::vector<Workload> workloads;
    workloads.push_back({"synth:tree", [&] {
                             si::synth::SynthOptions opts;
                             opts.verify_result = true;
                             const auto res = si::synth::synthesize(synth_spec, opts);
                             return static_cast<std::uint64_t>(
                                 res.graph.num_states() + res.verification.states_explored);
                         }});
    workloads.push_back({"regions+mc:fork-join", [&] {
                             const si::sg::RegionAnalysis ra(fork_join);
                             const auto report = si::mc::check_requirement(ra, {});
                             return static_cast<std::uint64_t>(fork_join.num_states() +
                                                               report.regions.size());
                         }});
    workloads.push_back({"regions+mc:sequencer", [&] {
                             const si::sg::RegionAnalysis ra(sequencer);
                             const auto report = si::mc::check_requirement(ra, {});
                             return static_cast<std::uint64_t>(sequencer.num_states() +
                                                               report.regions.size());
                         }});
    workloads.push_back({"regions+mc:tree", [&] {
                             const si::sg::RegionAnalysis ra(synth_spec);
                             const auto report = si::mc::check_requirement(ra, {});
                             return static_cast<std::uint64_t>(synth_spec.num_states() +
                                                               report.regions.size());
                         }});
    workloads.push_back({"fault-campaign:fork-join", [&] {
                             si::verify::fault::CampaignOptions opts;
                             opts.seed = 7;
                             opts.dynamic_opts.max_sites = smoke ? 4 : 16;
                             opts.schedule_walks = smoke ? 2 : 4;
                             const auto report = si::verify::fault::run_campaign(
                                 campaign_target.netlist, campaign_target.graph, opts);
                             return static_cast<std::uint64_t>(
                                 campaign_target.graph.num_states() * report.injected());
                         }});
    workloads.push_back({"verify-suite:tree", [&] {
                             const auto suite = si::verify::verify_suite(suite_target.netlist,
                                                                         suite_target.graph);
                             return static_cast<std::uint64_t>(suite.si.states_explored);
                         }});

    // The gen-scaling ladder sweeps three orders of magnitude; the
    // ring4/pipe8 rungs extend it past the former 21,952-state ceiling.
    const std::vector<std::string> ladder =
        smoke ? std::vector<std::string>{"par:pipe2", "par:ring2,ring2", "par:ring3,ring3"}
              : std::vector<std::string>{"par:pipe2", "par:ring2,ring2", "par:ring3,ring3",
                                         "par:ring3,ring3,seq3", "par:ring3,ring3,ring3,seq2",
                                         "par:ring4,ring4,pipe8", "par:ring4,ring4,ring4",
                                         "par:ring4,ring4,ring4,pipe8"};

    if (profile) {
        // Attribution mode: no timing table, just per-workload span
        // profiles (plus seed-vs-indexed contrast on the gen ladder,
        // where the states/sec cliff lives).
        si::obs::set_clock(si::obs::ClockMode::Wall);
        si::util::set_num_threads(1);
        si::util::set_fast_path(true);
        for (const auto& w : workloads) profile_one(w.name + " [indexed]", w.run);
        for (const auto& text : ladder) {
            const auto recipe = si::gen::Recipe::parse(text);
            if (!recipe) continue;
            const si::stg::Stg net = si::gen::build(*recipe);
            for (const bool fast : {false, true}) {
                si::util::set_fast_path(fast);
                profile_one("gen:" + text + (fast ? " [indexed]" : " [seed]"), [&] {
                    return static_cast<std::uint64_t>(
                        si::sg::build_state_graph(net, {1u << 18}).num_states());
                });
            }
        }
        si::util::set_fast_path(true);
        si::obs::set_clock(si::obs::ClockMode::Deterministic);
        return 0;
    }

    const std::vector<Mode> modes = {{"seed", false, 1},
                                     {"indexed", true, 1},
                                     {"parallel-2", true, 2},
                                     {"parallel-8", true, 8}};

    // results[m][w] = best-of-reps sample for workload w under mode m.
    // Observability stays off while timing: the baseline records the
    // shipping configuration (and the <2% disabled-overhead budget is
    // checked by comparing this file across commits, not within a run).
    si::obs::set_mode(si::obs::Mode::Off);
    std::vector<std::vector<Sample>> results(modes.size(),
                                             std::vector<Sample>(workloads.size()));
    for (std::size_t m = 0; m < modes.size(); ++m) {
        si::util::set_fast_path(modes[m].fast_path);
        si::util::set_num_threads(modes[m].threads);
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            Sample best;
            for (std::size_t r = 0; r < reps; ++r) {
                const auto t0 = Clock::now();
                const std::uint64_t states = workloads[w].run();
                const auto t1 = Clock::now();
                const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
                if (r == 0 || ms < best.ms) best = {ms, states};
            }
            results[m][w] = best;
            std::fprintf(stderr, "%-12s %-24s %10.3f ms  %12.0f states/s\n",
                         modes[m].name.c_str(), workloads[w].name.c_str(), best.ms,
                         best.ms > 0 ? 1000.0 * double(best.states) / best.ms : 0.0);
        }
    }
    si::util::set_fast_path(true);

    // Scaling section: token-game unfolding throughput (states/sec) as a
    // function of |SG| over si::gen workloads — parallel composition
    // multiplies component state counts, so the ladder sweeps two orders
    // of magnitude. Timed in the shipping configuration (indexed, one
    // thread); recorded so states/sec at each size is regression-visible.
    struct GenRung {
        std::string recipe;
        std::uint64_t states = 0;
        double ms = 0;
    };
    si::util::set_num_threads(1);
    std::vector<GenRung> gen_rungs;
    for (const auto& text : ladder) {
        const auto recipe = si::gen::Recipe::parse(text);
        if (!recipe) continue;
        const si::stg::Stg net = si::gen::build(*recipe);
        GenRung rung{text, 0, 0};
        for (std::size_t r = 0; r < reps; ++r) {
            const auto t0 = Clock::now();
            const auto graph = si::sg::build_state_graph(net, {1u << 18});
            const auto t1 = Clock::now();
            const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
            if (r == 0 || ms < rung.ms) rung = {text, graph.num_states(), ms};
        }
        gen_rungs.push_back(rung);
        std::fprintf(stderr, "gen-scaling  %-28s %8llu states %10.3f ms  %12.0f states/s\n",
                     rung.recipe.c_str(), static_cast<unsigned long long>(rung.states), rung.ms,
                     rung.ms > 0 ? 1000.0 * double(rung.states) / rung.ms : 0.0);
    }

    // Insertion ladder: the exact-insertion engines against the legacy
    // enumerate-and-block loop, one root CSC-repair round per Table 1
    // case with violations. Wall time is best-of-reps per engine; the
    // canonical stream's attempt count is deterministic and identical
    // for every spec engine (the byte-identity contract, DESIGN.md §8),
    // so it is recorded once as the ladder's work unit. The ganesh_8 row
    // is the two-signal case the spec engines resolve exactly.
    struct InsertRung {
        std::string stg;
        std::uint64_t states = 0;
        std::size_t victims = 0;
        std::size_t attempts = 0; ///< canonical stream length (engine-invariant)
        double legacy_ms = 0, eager_ms = 0, cegar_ms = 0, portfolio_ms = 0;
    };
    std::vector<InsertRung> insert_rungs;
    {
        si::util::set_num_threads(0); // portfolio racers use the pool
        const auto smoke_pick = [&](const std::string& n) {
            return !smoke || n == "nak-pa" || n == "duplicator" || n == "ganesh_8";
        };
        const auto timed = [&](auto&& fn) {
            double best = 0;
            for (std::size_t r = 0; r < reps; ++r) {
                const auto t0 = Clock::now();
                fn();
                const double ms =
                    std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
                if (r == 0 || ms < best) best = ms;
            }
            return best;
        };
        for (const auto& e : si::bench::table1_suite()) {
            if (!smoke_pick(e.name)) continue;
            const si::sg::StateGraph graph = si::sg::build_state_graph(si::bench::load(e));
            const si::sg::RegionAnalysis ra(graph);
            const auto report = si::mc::check_requirement(ra, {});
            std::vector<si::RegionId> victims;
            for (const auto& r : report.regions)
                if (!r.ok()) victims.push_back(r.region);
            if (victims.empty()) continue; // CSC already holds
            InsertRung rung{e.name, graph.num_states(), victims.size()};
            si::synth::InsertionOptions legacy_opts;
            legacy_opts.engine = si::synth::InsertEngine::Legacy;
            rung.legacy_ms = timed([&] {
                (void)si::synth::insert_signal_candidates(ra, victims, "csc0", 3, legacy_opts);
            });
            const si::synth::InsertionOptions spec_opts;
            rung.eager_ms = timed([&] {
                rung.attempts = si::synth::run_spec_engine(ra, victims, "csc0", 3, spec_opts,
                                                           si::synth::SpecEncoding::Eager, 0,
                                                           nullptr)
                                    .stats.attempts;
            });
            rung.cegar_ms = timed([&] {
                (void)si::synth::run_spec_engine(ra, victims, "csc0", 3, spec_opts,
                                                 si::synth::SpecEncoding::Cegar, 0, nullptr);
            });
            si::synth::InsertionOptions pf_opts;
            pf_opts.engine = si::synth::InsertEngine::Portfolio;
            rung.portfolio_ms = timed([&] {
                (void)si::synth::insert_signal_candidates(ra, victims, "csc0", 3, pf_opts);
            });
            std::fprintf(stderr,
                         "insertion    %-12s %5llu states %2zu victims %4zu attempts  "
                         "legacy %8.3f ms  eager %8.3f (%.1fx)  cegar %8.3f  portfolio %8.3f\n",
                         rung.stg.c_str(), static_cast<unsigned long long>(rung.states),
                         rung.victims, rung.attempts, rung.legacy_ms, rung.eager_ms,
                         rung.eager_ms > 0 ? rung.legacy_ms / rung.eager_ms : 0.0,
                         rung.cegar_ms, rung.portfolio_ms);
            insert_rungs.push_back(std::move(rung));
        }
        si::util::set_num_threads(1);
    }

    // Million-state workload row: the Def-18 verdict through the
    // symbolic BDD engine on a net far past the explicit wall (the full
    // recipe has 2.56 * 10^6 reachable states; the explicit engine
    // exhausts its state budget there). One repetition — the run is tens
    // of seconds and the BDD path has no warm-up variance worth chasing.
    const std::string sym_recipe = smoke ? "par:ring4,ring4" : "par:ring5,ring5,ring5,ring5";
    double sym_ms = 0;
    si::mc::StgMcResult sym_res;
    {
        const auto recipe = si::gen::Recipe::parse(sym_recipe);
        const si::stg::Stg net = si::gen::build(*recipe);
        const auto t0 = Clock::now();
        sym_res = si::mc::check_stg(net, si::mc::Engine::Symbolic);
        const auto t1 = Clock::now();
        sym_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
        std::fprintf(stderr, "symbolic-mc  %-28s %10.3f ms  %s\n", sym_recipe.c_str(), sym_ms,
                     sym_res.describe().c_str());
    }

    // live_overhead: the workload suite A/B — once with telemetry fully
    // off (the gauges compile down to a null-slot branch) and once with
    // metrics on and live heartbeats streaming at a tight 50 ms interval
    // — so the recorded baseline states what SI_OBS_LIVE costs. Single
    // repetition, one thread: this is a coarse ratio, not a microbench.
    double live_off_ms = 0, live_on_ms = 0;
    {
        si::util::set_num_threads(1);
        si::obs::set_mode(si::obs::Mode::Off);
        si::obs::reset();
        // One untimed warmup pass first: the symbolic run above leaves
        // cold allocator/cache state whose one-time refill cost dwarfs
        // anything live telemetry does and would land entirely on the
        // "off" leg.
        for (const auto& w : workloads) (void)w.run();
        auto t0 = Clock::now();
        for (const auto& w : workloads) (void)w.run();
        live_off_ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

        si::obs::set_mode(si::obs::Mode::Metrics);
        si::obs::reset();
        si::obs::live::Options live_opts;
        live_opts.path = out_path + ".live.jsonl";
        live_opts.interval_ms = 50;
        live_opts.force = true;
        if (si::obs::live::configure(live_opts).empty()) si::obs::live::start();
        t0 = Clock::now();
        for (const auto& w : workloads) (void)w.run();
        live_on_ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
        si::obs::live::shutdown();
        si::obs::set_mode(si::obs::Mode::Off);
        si::obs::reset();
        std::fprintf(stderr, "live-overhead  off %10.3f ms  on %10.3f ms  ratio %.3f\n",
                     live_off_ms, live_on_ms,
                     live_off_ms > 0 ? live_on_ms / live_off_ms : 0.0);
    }

    // Untimed metrics+trace pass: the same workloads once more with
    // counters AND spans on (wall lane enabled), so the recorded
    // baseline states both what the timings paid for and where the time
    // went. A fixed slice of the differential fuzzing campaign runs here
    // too: its gen.*/fuzz.* counters join the snapshot, so the obs_diff
    // guard extends over the generator and both oracles.
    si::obs::set_mode(si::obs::Mode::Trace);
    si::obs::set_wall_lane(true);
    si::obs::reset();
    si::util::set_num_threads(1);
    for (const auto& w : workloads) (void)w.run();
    {
        si::gen::CampaignOptions fuzz_opts;
        fuzz_opts.seed = 1;
        fuzz_opts.count = smoke ? 4 : 8;
        fuzz_opts.hostile_per_case = 1;
        (void)si::gen::run_campaign(fuzz_opts);
    }
    {
        // One small symbolic MC run so the mc.symbolic.* counters join
        // the obs_diff-guarded snapshot alongside sg.store.*.
        const auto recipe = si::gen::Recipe::parse("par:ring3,ring3");
        (void)si::mc::check_stg(si::gen::build(*recipe), si::mc::Engine::Symbolic);
    }
    {
        // One portfolio insertion race on a fixed Table 1 case: the
        // synthesis workloads above already exercise the default (eager)
        // spec engine, so this adds the racing path — synth.spec.races
        // and the winner's stream counters, all deterministic because
        // every racer computes the same canonical stream.
        for (const auto& e : si::bench::table1_suite()) {
            if (e.name != "duplicator") continue;
            const si::sg::StateGraph graph = si::sg::build_state_graph(si::bench::load(e));
            const si::sg::RegionAnalysis ra(graph);
            const auto report = si::mc::check_requirement(ra, {});
            std::vector<si::RegionId> victims;
            for (const auto& r : report.regions)
                if (!r.ok()) victims.push_back(r.region);
            si::synth::InsertionOptions opts;
            opts.engine = si::synth::InsertEngine::Portfolio;
            if (!victims.empty())
                (void)si::synth::insert_signal_candidates(ra, victims, "csc0", 3, opts);
        }
    }
    // Freeze the span tree, then drop to Metrics mode: span recording
    // stops (the percentile counters below must not grow the tree) while
    // the metric shards stay intact and writable.
    const auto trace_snap = si::obs::trace::snapshot();
    si::obs::set_mode(si::obs::Mode::Metrics);
    si::obs::set_wall_lane(false);
    {
        // Per-stage tick-lane latency percentiles as stable integer
        // counters: the tick lane is byte-identical across thread counts
        // and run-to-run on fixed seeds, so obs_diff can guard these
        // like any other stable counter.
        for (const auto& [name, p] :
             si::obs::trace::latency_percentiles(trace_snap, si::obs::trace::Lane::Tick)) {
            si::obs::count("latency." + name + ".p50", p.p50);
            si::obs::count("latency." + name + ".p95", p.p95);
            si::obs::count("latency." + name + ".p99", p.p99);
        }
    }
    {
        // Timing-derived guard value: the indexed-mode geomean speedup
        // vs seed, inverted (scaled to 1e5) so that a *drop* in the
        // geomean shows up as counter growth — which is the direction
        // obs_diff's threshold machinery tests. The perf-guard ctest
        // pins this counter to 1.1 (a >10% regression fails).
        std::vector<double> indexed_speedups;
        for (std::size_t w = 0; w < workloads.size(); ++w)
            if (results[1][w].ms > 0) indexed_speedups.push_back(results[0][w].ms / results[1][w].ms);
        const double g = geomean(indexed_speedups);
        if (g > 0)
            si::obs::count("perf.geomean_inverse_scaled",
                           static_cast<std::uint64_t>(std::llround(100000.0 / g)));
    }
    const std::string metrics_json = si::obs::metrics_json();
    // Wall-lane percentiles are real nanoseconds — informative, not
    // deterministic, so they go in their own JSON block (below) rather
    // than the obs_diff-guarded "metrics" object.
    const auto wall_lat =
        si::obs::trace::latency_percentiles(trace_snap, si::obs::trace::Lane::Wall);
    std::string obs_err;
    if (!obs_out.empty()) obs_err = si::obs::export_to_file(obs_out, force);
    std::string trace_err;
    if (!trace_out.empty()) {
        const auto prof = si::obs::trace::profile(
            trace_snap, trace_snap.has_wall ? si::obs::trace::Lane::Wall
                                            : si::obs::trace::Lane::Tick);
        trace_err = si::obs::report::write(trace_out, si::obs::trace::profile_json(prof), force);
    }
    si::obs::set_mode(si::obs::Mode::Off);
    si::util::set_num_threads(0);

    std::ofstream json(out_path);
    if (!json) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    json << "{\n";
    json << "  \"bench\": \"perf_baseline\",\n";
    json << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
    json << "  \"repetitions\": " << reps << ",\n";
    json << "  \"host_threads\": " << std::thread::hardware_concurrency() << ",\n";
    json << "  \"baseline_mode\": \"seed\",\n";
    json << "  \"metrics\": " << metrics_json << ",\n";
    json << "  \"latency_wall_ns\": {";
    {
        bool first = true;
        for (const auto& [name, p] : wall_lat) {
            json << (first ? "\n" : ",\n");
            first = false;
            json << "    \"" << name << "\": {\"p50\": " << p.p50 << ", \"p95\": " << p.p95
                 << ", \"p99\": " << p.p99 << ", \"count\": " << p.count << "}";
        }
        json << (first ? "}" : "\n  }") << ",\n";
    }
    json << "  \"gen_scaling\": [\n";
    for (std::size_t g = 0; g < gen_rungs.size(); ++g) {
        const GenRung& rung = gen_rungs[g];
        json << "    {\"recipe\": \"" << rung.recipe << "\", \"sg_states\": " << rung.states
             << ", \"ms\": " << rung.ms << ", \"states_per_sec\": "
             << (rung.ms > 0 ? 1000.0 * double(rung.states) / rung.ms : 0.0) << "}"
             << (g + 1 < gen_rungs.size() ? ",\n" : "\n");
    }
    json << "  ],\n";
    json << "  \"insertion_ladder\": [\n";
    for (std::size_t g = 0; g < insert_rungs.size(); ++g) {
        const InsertRung& r = insert_rungs[g];
        json << "    {\"stg\": \"" << r.stg << "\", \"sg_states\": " << r.states
             << ", \"victims\": " << r.victims << ", \"stream_attempts\": " << r.attempts
             << ", \"legacy_ms\": " << r.legacy_ms << ", \"eager_ms\": " << r.eager_ms
             << ", \"cegar_ms\": " << r.cegar_ms << ", \"portfolio_ms\": " << r.portfolio_ms
             << ", \"speedup_eager_vs_legacy\": "
             << (r.eager_ms > 0 ? r.legacy_ms / r.eager_ms : 0.0)
             << ", \"speedup_cegar_vs_legacy\": "
             << (r.cegar_ms > 0 ? r.legacy_ms / r.cegar_ms : 0.0)
             << ", \"speedup_portfolio_vs_legacy\": "
             << (r.portfolio_ms > 0 ? r.legacy_ms / r.portfolio_ms : 0.0) << "}"
             << (g + 1 < insert_rungs.size() ? ",\n" : "\n");
    }
    json << "  ],\n";
    json << "  \"symbolic_mc\": {\"recipe\": \"" << sym_recipe
         << "\", \"reachable_states\": " << sym_res.reachable_states << ", \"ms\": " << sym_ms
         << ", \"regions\": " << sym_res.regions << ", \"complete\": "
         << (sym_res.complete() ? "true" : "false")
         << ", \"satisfied\": " << (sym_res.satisfied ? "true" : "false") << "},\n";
    json << "  \"live_overhead\": {\"off_ms\": " << live_off_ms << ", \"on_ms\": " << live_on_ms
         << ", \"ratio\": " << (live_off_ms > 0 ? live_on_ms / live_off_ms : 0.0) << "},\n";
    json << "  \"modes\": [\n";
    for (std::size_t m = 0; m < modes.size(); ++m) {
        std::vector<double> speedups;
        json << "    {\n      \"name\": \"" << modes[m].name << "\",\n";
        json << "      \"fast_path\": " << (modes[m].fast_path ? "true" : "false") << ",\n";
        json << "      \"threads\": " << modes[m].threads << ",\n";
        json << "      \"workloads\": [\n";
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            const Sample& s = results[m][w];
            const double speedup = s.ms > 0 ? results[0][w].ms / s.ms : 0.0;
            speedups.push_back(speedup);
            json << "        {\"name\": \"" << workloads[w].name << "\", \"ms\": " << s.ms
                 << ", \"states\": " << s.states << ", \"states_per_sec\": "
                 << (s.ms > 0 ? 1000.0 * double(s.states) / s.ms : 0.0)
                 << ", \"speedup_vs_seed\": " << speedup << "}";
            json << (w + 1 < workloads.size() ? ",\n" : "\n");
        }
        json << "      ],\n";
        json << "      \"geomean_speedup_vs_seed\": " << geomean(speedups) << "\n";
        json << "    }" << (m + 1 < modes.size() ? ",\n" : "\n");
        std::fprintf(stderr, "%-12s geomean speedup vs seed: %.2fx\n", modes[m].name.c_str(),
                     geomean(speedups));
    }
    json << "  ]\n}\n";
    std::cout << "wrote " << out_path << "\n";
    if (!obs_err.empty()) {
        std::fprintf(stderr, "%s\n", obs_err.c_str());
        return 1;
    }
    if (!obs_out.empty()) std::cout << "wrote " << obs_out << "\n";
    if (!trace_err.empty()) {
        std::fprintf(stderr, "%s\n", trace_err.c_str());
        return 1;
    }
    if (!trace_out.empty()) std::cout << "wrote " << trace_out << "\n";
    return 0;
}
