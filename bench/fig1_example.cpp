// Regenerates the paper's Example 1 (Figure 1 + equations (1)).
//
// Output: the transcribed state graph, its region structure, the
// non-persistency of +a w.r.t. ER(+d,1), the failure of every single
// cover cube, the two-cube Beerel-style baseline implementation of
// equations (1), and the verifier's acknowledgement-failure witness on
// that baseline.
//
// Usage: fig1_example [--obs-out <path>] [--explain-out <path>] [--force]
//   --obs-out      write the si::obs trace of the run (Chrome trace-event
//                  JSON; tracing is switched on if it is not already).
//                  Refuses to overwrite an existing file without --force.
//   --explain-out  write the si::obs::report diagnosis of the run as JSON
//                  (the MC explain report with the cube-search trail and
//                  the verifier's annotated hazard replay, concatenated
//                  as a two-member object). Same overwrite rule.
#include <cstdio>
#include <cstring>
#include <string>

#include "si/bench_stgs/figures.hpp"
#include "si/boolean/cover.hpp"
#include "si/mc/requirement.hpp"
#include "si/netlist/print.hpp"
#include "si/obs/obs.hpp"
#include "si/obs/report.hpp"
#include "si/sg/analysis.hpp"
#include "si/synth/baseline.hpp"
#include "si/verify/verifier.hpp"

using namespace si;

int main(int argc, char** argv) {
    std::string obs_out;
    std::string explain_out;
    bool force = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--obs-out") == 0 && i + 1 < argc) {
            obs_out = argv[++i];
        } else if (std::strcmp(argv[i], "--explain-out") == 0 && i + 1 < argc) {
            explain_out = argv[++i];
        } else if (std::strcmp(argv[i], "--force") == 0) {
            force = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--obs-out <path>] [--explain-out <path>] [--force]\n",
                         argv[0]);
            return 2;
        }
    }
    if (!obs_out.empty() && obs::mode() != obs::Mode::Trace) obs::set_mode(obs::Mode::Trace);

    printf("== Figure 1: state graph specification ==\n");
    const auto g = bench::figure1();
    printf("%s\n", g.dump().c_str());

    printf("== Behavioural properties (Section II) ==\n");
    printf("semi-modular:          %s (initial state 0*0*00 is an input conflict)\n",
           sg::is_semimodular(g) ? "yes" : "no");
    printf("output semi-modular:   %s\n", sg::is_output_semimodular(g) ? "yes" : "no");
    printf("output distributive:   %s\n\n", sg::is_output_distributive(g) ? "yes" : "no");

    printf("== Regions (Defs 5-12) ==\n");
    const sg::RegionAnalysis ra(g);
    printf("%s\n", ra.report().c_str());

    printf("== Monotonous Cover requirement (Def 18) ==\n");
    mc::McCubeSearch search;
    search.record_trail = !explain_out.empty(); // narrate the search in the report
    const auto report = mc::check_requirement(ra, search);
    printf("%s\nsatisfied: %s  (paper: ER(+d,1) has a non-persistent trigger +a, so no\n"
           "single cube covers it -- two cubes are needed)\n\n",
           report.describe(ra).c_str(), report.satisfied() ? "yes" : "NO");

    printf("== Equations (1): Beerel-style [2] baseline implementation ==\n");
    const auto networks = synth::derive_baseline_networks(ra);
    const auto names = g.signals().names();
    for (const auto& n : networks) {
        Cover up(g.num_signals()), down(g.num_signals());
        for (const auto& c : n.up_cubes) up.add(c);
        for (const auto& c : n.down_cubes) down.add(c);
        printf("S%s = %s\n", names[n.signal.index()].c_str(), up.to_expr(names).c_str());
        printf("R%s = %s\n", names[n.signal.index()].c_str(), down.to_expr(names).c_str());
    }
    const auto nl = net::build_standard_implementation(g, networks);
    printf("\nnetlist:\n%s\n", net::to_equations(nl).c_str());

    printf("== Verification of the baseline (the paper: \"the method [2] fails to find\n"
           "the acknowledgement for both AND gates\") ==\n");
    const auto result = verify::verify_speed_independence(nl, g);
    printf("%s\n", result.describe().c_str());
    printf("\npaper-vs-measured: the baseline needs %zu cubes for Sd (paper: 2) and the\n"
           "verifier %s a hazard on it (paper: unacknowledged gates).\n",
           networks.back().up_cubes.size(), result.ok ? "does NOT find" : "finds");
    if (!result.violations.empty() && !result.violations.front().span_path.empty())
        printf("hazard provenance: %s\n", result.violations.front().span_path.c_str());

    if (!obs_out.empty()) {
        const std::string err = obs::export_to_file(obs_out, force);
        if (!err.empty()) {
            std::fprintf(stderr, "%s\n", err.c_str());
            return 2;
        }
        printf("wrote %s\n", obs_out.c_str());
    }
    if (!explain_out.empty()) {
        const std::string doc = "{\n\"mc\": " + obs::report::mc_explain_json(ra, report) +
                                ",\n\"verify\": " + obs::report::verify_explain_json(nl, result) +
                                "}\n";
        const std::string err = obs::report::write(explain_out, doc, force);
        if (!err.empty()) {
            std::fprintf(stderr, "%s\n", err.c_str());
            return 2;
        }
        printf("wrote %s\n", explain_out.c_str());
    }
    return result.ok ? 1 : 0; // the expected outcome is a detected hazard
}
