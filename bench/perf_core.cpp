// Microbenchmarks of the substrates (google-benchmark): reachability,
// region analysis, MC checking, cube algebra, SAT solving, signal
// insertion and gate-level verification. Not a paper table — these
// document the engineering envelope of the implementation.
#include <benchmark/benchmark.h>

#include "si/bdd/symbolic.hpp"
#include "si/bench_stgs/figures.hpp"
#include "si/bench_stgs/generators.hpp"
#include "si/bench_stgs/table1.hpp"
#include "si/boolean/minimize.hpp"
#include "si/mc/requirement.hpp"
#include "si/sat/solver.hpp"
#include "si/sg/from_stg.hpp"
#include "si/stg/parse.hpp"
#include "si/sg/regions.hpp"
#include "si/synth/synthesize.hpp"
#include "si/verify/verifier.hpp"

using namespace si;

namespace {

using bench::make_fork_join;
using bench::make_pipeline;
using bench::make_sequencer;

void BM_Reachability_Pipeline(benchmark::State& state) {
    const auto net = make_pipeline(static_cast<int>(state.range(0)));
    for (auto _ : state) benchmark::DoNotOptimize(sg::build_state_graph(net).num_states());
    state.SetLabel(std::to_string(sg::build_state_graph(net).num_states()) + " states");
}
BENCHMARK(BM_Reachability_Pipeline)->Arg(8)->Arg(32)->Arg(128);

void BM_Reachability_ForkJoin(benchmark::State& state) {
    const auto net = make_fork_join(static_cast<int>(state.range(0)));
    for (auto _ : state) benchmark::DoNotOptimize(sg::build_state_graph(net).num_states());
    state.SetLabel(std::to_string(sg::build_state_graph(net).num_states()) + " states");
}
BENCHMARK(BM_Reachability_ForkJoin)->Arg(8)->Arg(12)->Arg(16);

void BM_SymbolicReachability_ForkJoin(benchmark::State& state) {
    // Same nets as the explicit benchmark above: the BDD representation
    // is polynomial where the token game is exponential.
    const auto net = make_fork_join(static_cast<int>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(bdd::symbolic_reachability(net).reachable_markings);
    state.SetLabel(std::to_string(static_cast<long long>(
                       bdd::symbolic_reachability(net).reachable_markings)) +
                   " markings");
}
BENCHMARK(BM_SymbolicReachability_ForkJoin)->Arg(8)->Arg(16)->Arg(24);

void BM_RegionAnalysis_ForkJoin(benchmark::State& state) {
    const auto g = sg::build_state_graph(make_fork_join(static_cast<int>(state.range(0))));
    for (auto _ : state) {
        const sg::RegionAnalysis ra(g);
        benchmark::DoNotOptimize(ra.regions().size());
    }
}
BENCHMARK(BM_RegionAnalysis_ForkJoin)->Arg(6)->Arg(10);

void BM_McRequirement_Figure3(benchmark::State& state) {
    const auto g = bench::figure3();
    const sg::RegionAnalysis ra(g);
    for (auto _ : state) benchmark::DoNotOptimize(mc::check_requirement(ra).satisfied());
}
BENCHMARK(BM_McRequirement_Figure3);

void BM_CubeSharp(benchmark::State& state) {
    const Cube a = Cube::from_string("1---0---1---0---");
    const Cube b = Cube::from_string("--1---0---1---0-");
    for (auto _ : state) benchmark::DoNotOptimize(a.sharp(b).size());
}
BENCHMARK(BM_CubeSharp);

void BM_CoverComplement(benchmark::State& state) {
    Cover f(12);
    for (int i = 0; i + 2 < 12; ++i) {
        Cube c(12);
        c.set_lit(SignalId(static_cast<std::size_t>(i)), Lit::One);
        c.set_lit(SignalId(static_cast<std::size_t>(i + 2)), Lit::Zero);
        f.add(c);
    }
    for (auto _ : state) benchmark::DoNotOptimize(f.complement().size());
}
BENCHMARK(BM_CoverComplement);

void BM_Minimize(benchmark::State& state) {
    Cover onset(10);
    for (std::size_t m = 0; m < 64; m += 3) {
        BitVec code(10);
        for (std::size_t b = 0; b < 6; ++b)
            if ((m >> b) & 1u) code.set(b);
        onset.add(Cube::minterm(code));
    }
    for (auto _ : state) benchmark::DoNotOptimize(minimize(onset, Cover(10)).size());
}
BENCHMARK(BM_Minimize);

void BM_SatPigeonHole(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sat::Solver s;
        std::vector<std::vector<sat::Var>> p(static_cast<std::size_t>(n));
        for (auto& row : p)
            for (int h = 0; h < n - 1; ++h) row.push_back(s.new_var());
        for (int i = 0; i < n; ++i) {
            std::vector<sat::Lit> c;
            for (int h = 0; h < n - 1; ++h) c.push_back(sat::pos(p[static_cast<std::size_t>(i)][static_cast<std::size_t>(h)]));
            s.add_clause(std::span<const sat::Lit>(c.data(), c.size()));
        }
        for (int h = 0; h < n - 1; ++h)
            for (int i = 0; i < n; ++i)
                for (int j = i + 1; j < n; ++j)
                    s.add_clause({sat::neg(p[static_cast<std::size_t>(i)][static_cast<std::size_t>(h)]),
                                  sat::neg(p[static_cast<std::size_t>(j)][static_cast<std::size_t>(h)])});
        benchmark::DoNotOptimize(s.solve());
    }
}
BENCHMARK(BM_SatPigeonHole)->Arg(6)->Arg(8);

void BM_Synthesize_Table1(benchmark::State& state) {
    const auto& entry = bench::table1_suite()[static_cast<std::size_t>(state.range(0))];
    const auto g = sg::build_state_graph(bench::load(entry));
    for (auto _ : state) benchmark::DoNotOptimize(synth::synthesize(g).inserted.size());
    state.SetLabel(entry.name);
}
BENCHMARK(BM_Synthesize_Table1)->Arg(0)->Arg(2)->Arg(8);

void BM_SymbolicCsc_ForkJoin(benchmark::State& state) {
    const auto net = make_fork_join(static_cast<int>(state.range(0)));
    for (auto _ : state) benchmark::DoNotOptimize(bdd::symbolic_csc(net).csc);
}
BENCHMARK(BM_SymbolicCsc_ForkJoin)->Arg(8)->Arg(12)->Arg(16);

void BM_Synthesize_Tree(benchmark::State& state) {
    const auto g = sg::build_state_graph(bench::make_tree(7, static_cast<int>(state.range(0))));
    for (auto _ : state) benchmark::DoNotOptimize(synth::synthesize(g).netlist.num_gates());
    state.SetLabel(std::to_string(g.num_states()) + " states");
}
BENCHMARK(BM_Synthesize_Tree)->Arg(2)->Arg(3);

void BM_Insertion_Sequencer(benchmark::State& state) {
    // Each sequencer way beyond the first needs a state signal: the SAT
    // insertion loop dominates.
    const auto g = sg::build_state_graph(make_sequencer(static_cast<int>(state.range(0))));
    for (auto _ : state) benchmark::DoNotOptimize(synth::synthesize(g).inserted.size());
}
BENCHMARK(BM_Insertion_Sequencer)->Arg(2)->Arg(3)->Arg(4);

void BM_Verify_Figure1Netlist(benchmark::State& state) {
    const auto res = synth::synthesize(bench::figure1());
    for (auto _ : state)
        benchmark::DoNotOptimize(
            verify::verify_speed_independence(res.netlist, res.graph).states_explored);
}
BENCHMARK(BM_Verify_Figure1Netlist);

} // namespace
