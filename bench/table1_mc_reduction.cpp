// Regenerates the paper's Table 1 ("RESULTS OF MC-REDUCTION"): for each
// benchmark, the number of inputs, outputs and state signals inserted by
// the MC-driven state assignment. Extended columns report the state
// counts before/after expansion, the netlist size, the verifier verdict
// and the wall-clock time (the paper's machine budget was "within a
// 5 minutes timeout on a DEC 5000").
//
// Usage: table1_mc_reduction [--obs-out <path>] [--force]
//   --obs-out  write the si::obs trace of the run (Chrome trace-event
//              JSON; tracing is switched on if it is not already).
//              Refuses to overwrite an existing file without --force.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "si/bench_stgs/table1.hpp"
#include "si/obs/obs.hpp"
#include "si/sg/from_stg.hpp"
#include "si/synth/synthesize.hpp"
#include "si/util/table.hpp"

using namespace si;

int main(int argc, char** argv) {
    std::string obs_out;
    bool force = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--obs-out") == 0 && i + 1 < argc) {
            obs_out = argv[++i];
        } else if (std::strcmp(argv[i], "--force") == 0) {
            force = true;
        } else {
            std::fprintf(stderr, "usage: %s [--obs-out <path>] [--force]\n", argv[0]);
            return 2;
        }
    }
    if (!obs_out.empty() && obs::mode() != obs::Mode::Trace) obs::set_mode(obs::Mode::Trace);

    printf("Table 1: RESULTS OF MC-REDUCTION (paper values in brackets)\n\n");
    TextTable table({"example", "in", "out", "added signals", "states", "AND/OR/latch",
                     "literals", "SI-verified", "time"});
    int mismatches = 0;
    double total_ms = 0.0;

    for (const auto& entry : bench::table1_suite()) {
        const auto net = bench::load(entry);
        const auto graph = sg::build_state_graph(net);
        const auto t0 = std::chrono::steady_clock::now();
        synth::SynthOptions opts;
        opts.verify_result = true;
        const auto res = synth::synthesize(graph, opts);
        const double ms =
            std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                .count();
        total_ms += ms;

        const auto s = res.netlist.stats();
        char added[32], states[32], gates[32], time[32];
        std::snprintf(added, sizeof added, "%zu [%d]", res.inserted.size(), entry.paper_added);
        std::snprintf(states, sizeof states, "%zu -> %zu", graph.num_states(),
                      res.graph.num_states());
        std::snprintf(gates, sizeof gates, "%zu/%zu/%zu", s.and_gates, s.or_gates,
                      s.c_elements + s.rs_latches);
        std::snprintf(time, sizeof time, "%.1f ms", ms);
        table.add_row({entry.name, std::to_string(entry.paper_inputs),
                       std::to_string(entry.paper_outputs), added, states, gates,
                       std::to_string(s.literals), res.verification.ok ? "yes" : "NO", time});
        if (static_cast<int>(res.inserted.size()) > entry.paper_added || !res.verification.ok)
            ++mismatches; // fewer signals than the paper counts as a win, not a miss
    }

    printf("%s\n", table.render().c_str());
    printf("total synthesis time: %.1f ms (paper: every example within a 5 minute\n"
           "timeout on a DEC 5000)\n",
           total_ms);
    printf("rows matching the paper's added-signal count: %zu/9\n",
           bench::table1_suite().size() - static_cast<std::size_t>(mismatches));

    if (!obs_out.empty()) {
        const std::string err = obs::export_to_file(obs_out, force);
        if (!err.empty()) {
            std::fprintf(stderr, "%s\n", err.c_str());
            return 2;
        }
        printf("wrote %s\n", obs_out.c_str());
    }
    return mismatches;
}
