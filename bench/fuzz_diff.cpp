// Differential fuzzing campaign over seeded generated STGs (Theorem 3
// mechanically, at scale): every generated specification runs through
// unfolding -> MC check -> insertion -> mapping -> gate-level
// verification, and the MC checker's verdict is compared with the
// verifier's hazard oracle. Any disagreement (or pipeline error, or
// unstructured parser failure on a hostile .g mutant) is a finding: it
// is shrunk to a minimal recipe and written out as a replayable
// seed+recipe one-liner. Budget exhaustion tallies as Unknown and never
// aborts the campaign.
//
// Usage:
//   fuzz_diff [--count N] [--seed S] [--hostile K] [--max-blocks B]
//             [--engine explicit|symbolic|cross]
//             [--insertion-engine legacy|eager|cegar|portfolio|cross]
//             [--out <failures-file>] [--obs-out <path>] [--force]
//   fuzz_diff --replay "seed=<s> recipe=<r> [hostile=<k>]"
//   fuzz_diff --selftest-shrink
//
// Exit code: 0 clean / not reproduced, 1 findings / reproduced, 2 usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "si/gen/fuzz.hpp"
#include "si/gen/gen.hpp"
#include "si/obs/obs.hpp"
#include "si/util/error.hpp"

using namespace si;

namespace {

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--count N] [--seed S] [--hostile K] [--max-blocks B]\n"
                 "          [--engine explicit|symbolic|cross]\n"
                 "          [--insertion-engine legacy|eager|cegar|portfolio|cross]\n"
                 "          [--out <failures-file>] [--obs-out <path>] [--force]\n"
                 "       %s --replay \"seed=<s> recipe=<r> [hostile=<k>]\"\n"
                 "       %s --selftest-shrink\n",
                 argv0, argv0, argv0);
    return 2;
}

// The injected-disagreement hook used by --selftest-shrink: any recipe
// containing a fork of width >= 2 "fails", so the shrinker must converge
// on the minimal such recipe, par:fork2.
bool fake_fork_bug(const gen::Recipe& r) {
    for (const auto& b : r.blocks)
        if (b.kind == gen::BlockKind::Fork && b.param >= 2) return true;
    return false;
}

int selftest_shrink() {
    gen::CampaignOptions opts;
    opts.seed = 7;
    opts.count = 24;
    opts.hostile_per_case = 0;
    opts.inject_disagree = fake_fork_bug;
    const gen::CampaignResult result = gen::run_campaign(opts);
    std::printf("%s", result.describe().c_str());
    if (result.disagree == 0) {
        std::fprintf(stderr, "selftest: the injected fault never fired over %zu cases\n",
                     result.cases);
        return 1;
    }
    for (const auto& rec : result.failures) {
        if (rec.parser) continue;
        if (!fake_fork_bug(rec.shrunk)) {
            std::fprintf(stderr, "selftest: shrunk recipe '%s' no longer reproduces\n",
                         rec.shrunk.to_string().c_str());
            return 1;
        }
        if (rec.shrunk.to_string() != "par:fork2") {
            std::fprintf(stderr, "selftest: expected convergence to par:fork2, got '%s'\n",
                         rec.shrunk.to_string().c_str());
            return 1;
        }
        const auto replay = gen::replay_one_liner(rec.one_liner(), opts);
        if (!replay.ok || !replay.reproduced) {
            std::fprintf(stderr, "selftest: one-liner '%s' did not replay: %s\n",
                         rec.one_liner().c_str(), replay.describe().c_str());
            return 1;
        }
    }
    std::printf("selftest-shrink OK: %zu injected findings, all shrunk to par:fork2 "
                "and replayed from their one-liners\n",
                result.disagree);
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    gen::CampaignOptions opts;
    std::string out_path;
    std::string obs_out;
    std::string replay_line;
    bool force = false;
    bool selftest = false;
    for (int i = 1; i < argc; ++i) {
        const auto num = [&](std::uint64_t& dst) {
            if (i + 1 >= argc) return false;
            dst = std::strtoull(argv[++i], nullptr, 10);
            return true;
        };
        std::uint64_t v = 0;
        if (std::strcmp(argv[i], "--count") == 0 && num(v)) {
            opts.count = static_cast<std::size_t>(v);
        } else if (std::strcmp(argv[i], "--seed") == 0 && num(v)) {
            opts.seed = v;
        } else if (std::strcmp(argv[i], "--hostile") == 0 && num(v)) {
            opts.hostile_per_case = static_cast<std::size_t>(v);
        } else if (std::strcmp(argv[i], "--max-blocks") == 0 && num(v)) {
            opts.gen.max_blocks = static_cast<std::size_t>(v);
        } else if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
            const std::string mode = argv[++i];
            if (mode == "explicit") opts.diff.mc_engine = gen::McEngineMode::Explicit;
            else if (mode == "symbolic") opts.diff.mc_engine = gen::McEngineMode::Symbolic;
            else if (mode == "cross") opts.diff.mc_engine = gen::McEngineMode::Cross;
            else return usage(argv[0]);
        } else if (std::strcmp(argv[i], "--insertion-engine") == 0 && i + 1 < argc) {
            const std::string mode = argv[++i];
            if (mode == "legacy") opts.diff.insertion_engine = gen::InsertEngineMode::Legacy;
            else if (mode == "eager") opts.diff.insertion_engine = gen::InsertEngineMode::Eager;
            else if (mode == "cegar") opts.diff.insertion_engine = gen::InsertEngineMode::Cegar;
            else if (mode == "portfolio")
                opts.diff.insertion_engine = gen::InsertEngineMode::Portfolio;
            else if (mode == "cross") opts.diff.insertion_engine = gen::InsertEngineMode::Cross;
            else return usage(argv[0]);
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--obs-out") == 0 && i + 1 < argc) {
            obs_out = argv[++i];
        } else if (std::strcmp(argv[i], "--replay") == 0 && i + 1 < argc) {
            replay_line = argv[++i];
        } else if (std::strcmp(argv[i], "--force") == 0) {
            force = true;
        } else if (std::strcmp(argv[i], "--selftest-shrink") == 0) {
            selftest = true;
        } else {
            return usage(argv[0]);
        }
    }
    // --obs-out defaults to Metrics mode: a full campaign records one
    // span per pipeline stage per case, and at hundreds of cases the
    // trace dwarfs the counters anyone diffing campaign runs wants. Set
    // SI_OBS=trace in the environment to export the span tree instead
    // (each campaign case is wrapped in an obs::RequestScope, so spans
    // come back attributed to their case id).
    if (!obs_out.empty() && obs::mode() == obs::Mode::Off) obs::set_mode(obs::Mode::Metrics);

    int rc = 0;
    if (selftest) {
        rc = selftest_shrink();
    } else if (!replay_line.empty()) {
        const auto replay = gen::replay_one_liner(replay_line, opts);
        std::printf("%s\n", replay.describe().c_str());
        rc = !replay.ok ? 2 : (replay.reproduced ? 1 : 0);
    } else {
        const gen::CampaignResult result = gen::run_campaign(opts);
        std::printf("%s", result.describe().c_str());
        if (!out_path.empty()) {
            std::ofstream out(out_path, std::ios::trunc);
            for (const auto& rec : result.failures) {
                out << "# " << to_string(rec.verdict) << ": " << rec.detail << "\n";
                out << rec.one_liner() << "\n";
            }
            if (!out) {
                std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
                return 2;
            }
            std::printf("failures file: %s (%zu one-liners)\n", out_path.c_str(),
                        result.failures.size());
        }
        rc = result.clean() ? 0 : 1;
    }
    if (!obs_out.empty()) {
        const std::string err = obs::export_to_file(obs_out, force);
        if (!err.empty()) {
            std::fprintf(stderr, "%s\n", err.c_str());
            return 2;
        }
        std::printf("wrote %s\n", obs_out.c_str());
    }
    return rc;
}
