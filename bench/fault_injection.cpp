// Verification-coverage experiment: mutate every synthesized Table-1
// netlist (flip a literal polarity, drop a literal, swap the latch set
// and reset inputs) and measure how many mutants the speed-independence
// verifier rejects. A sound netlist-level verifier should kill
// essentially every behaviour-changing mutant; survivors are reported.
//
// Also reports whether 2-input tech mapping (fanin decomposition of the
// region AND/OR gates) preserves speed independence on each benchmark —
// the "standard library" question behind the paper's architecture.
#include <cstdio>

#include "si/bench_stgs/table1.hpp"
#include "si/netlist/transform.hpp"
#include "si/sg/from_stg.hpp"
#include "si/synth/synthesize.hpp"
#include "si/util/error.hpp"
#include "si/util/table.hpp"
#include "si/verify/verifier.hpp"

using namespace si;

namespace {

// Applies one structural mutation; returns false when the index is out
// of range for this netlist.
bool mutate(net::Netlist& nl, std::size_t which) {
    std::size_t seen = 0;
    for (std::size_t gi = 0; gi < nl.num_gates(); ++gi) {
        auto& g = nl.gate(GateId(gi));
        if (g.kind == net::GateKind::And || g.kind == net::GateKind::Or) {
            for (auto& f : g.fanins) {
                if (seen++ == which) { // flip literal polarity
                    f.inverted = !f.inverted;
                    return true;
                }
            }
            if (g.fanins.size() > 1 && seen++ == which) { // drop a literal
                g.fanins.pop_back();
                return true;
            }
        }
        if (g.kind == net::GateKind::CElement || g.kind == net::GateKind::RsLatch) {
            if (seen++ == which) { // swap set and reset
                std::swap(g.fanins[0], g.fanins[1]);
                return true;
            }
        }
    }
    return false;
}

} // namespace

int main() {
    printf("Fault injection on the synthesized Table-1 netlists\n\n");
    TextTable table({"example", "mutants", "killed", "survived", "2-input mapping SI?"});
    std::size_t total = 0, killed = 0;
    int failures = 0;

    for (const auto& entry : bench::table1_suite()) {
        const auto graph = sg::build_state_graph(bench::load(entry));
        const auto res = synth::synthesize(graph);

        std::size_t mutants = 0, dead = 0;
        for (std::size_t which = 0;; ++which) {
            net::Netlist mutant = res.netlist;
            if (!mutate(mutant, which)) break;
            ++mutants;
            bool rejected;
            try {
                rejected = !verify::verify_speed_independence(mutant, res.graph).ok;
            } catch (const Error&) {
                rejected = true; // structurally broken counts as caught
            }
            if (rejected) ++dead;
        }
        total += mutants;
        killed += dead;

        const auto mapped = net::decompose_fanin(res.netlist, 2);
        const bool mapped_ok = verify::verify_speed_independence(mapped, res.graph).ok;

        table.add_row({entry.name, std::to_string(mutants), std::to_string(dead),
                       std::to_string(mutants - dead), mapped_ok ? "yes" : "NO"});
    }
    printf("%s\n", table.render().c_str());
    printf("overall mutation kill rate: %zu/%zu\n", killed, total);
    printf("\nNote: a surviving mutant is not automatically a bug — dropping a literal\n"
           "can leave the function unchanged on the reachable codes. The 2-input\n"
           "mapping column answers whether tree-decomposing the monotone region\n"
           "functions preserves speed independence on these controllers.\n");
    return failures;
}
