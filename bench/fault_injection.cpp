// Verification-coverage experiment on the synthesized Table-1 netlists,
// driven by the si::verify::fault engine (seeded, deterministic):
//   * structural mutants (literal polarity flips, dropped literals,
//     swapped latch set/reset pairs) through the exhaustive verifier —
//     a sound netlist-level verifier should kill essentially every
//     behaviour-changing mutant;
//   * adversarial delay schedules — how many of the killed mutants a
//     sampled interleaving alone catches, without exhaustive search;
//   * transient faults (SEUs on state-holding gates, glitch pulses on
//     combinational wires) injected into reachable states, verified
//     onward from the perturbed state. Every dynamic survivor is listed
//     with its replayable witness trace.
//
// Also reports whether 2-input tech mapping (fanin decomposition of the
// region AND/OR gates) preserves speed independence on each benchmark —
// the "standard library" question behind the paper's architecture.
//
// Usage: fault_injection [--obs-out <path>] [--force]
//   --obs-out  write the si::obs export of the run (Chrome trace-event
//              JSON; tracing is switched on if it is not already).
//              Refuses to overwrite an existing file without --force.
#include <cstdio>
#include <cstring>
#include <string>

#include "si/bench_stgs/table1.hpp"
#include "si/netlist/transform.hpp"
#include "si/obs/obs.hpp"
#include "si/sg/from_stg.hpp"
#include "si/synth/synthesize.hpp"
#include "si/util/error.hpp"
#include "si/util/table.hpp"
#include "si/verify/fault.hpp"
#include "si/verify/verifier.hpp"

using namespace si;
using verify::fault::FaultClass;

namespace {

constexpr std::uint64_t kSeed = 20260806;

std::string ratio(const verify::fault::ClassStats& s) {
    return std::to_string(s.killed) + "/" + std::to_string(s.injected);
}

} // namespace

int main(int argc, char** argv) {
    std::string obs_out;
    bool force = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--obs-out") == 0 && i + 1 < argc) {
            obs_out = argv[++i];
        } else if (std::strcmp(argv[i], "--force") == 0) {
            force = true;
        } else {
            std::fprintf(stderr, "usage: %s [--obs-out <path>] [--force]\n", argv[0]);
            return 2;
        }
    }
    if (!obs_out.empty() && obs::mode() != obs::Mode::Trace) obs::set_mode(obs::Mode::Trace);

    printf("Fault injection on the synthesized Table-1 netlists (seed %llu)\n\n",
           static_cast<unsigned long long>(kSeed));
    TextTable table({"example", "structural", "delay-walk", "seu", "glitch",
                     "2-input mapping SI?"});
    verify::fault::CampaignReport totals;
    std::size_t structural_total = 0, structural_killed = 0;
    std::vector<std::pair<std::string, verify::fault::Survivor>> dynamic_survivors;

    for (const auto& entry : bench::table1_suite()) {
        const auto graph = sg::build_state_graph(bench::load(entry));
        const auto res = synth::synthesize(graph);

        verify::fault::CampaignOptions opts;
        opts.seed = kSeed;
        const auto report = verify::fault::run_campaign(res.netlist, res.graph, opts);

        verify::fault::ClassStats structural;
        for (const auto cls :
             {FaultClass::LiteralFlip, FaultClass::LiteralDrop, FaultClass::LatchSwap}) {
            const auto& s = report.per_class[static_cast<std::size_t>(cls)];
            structural.injected += s.injected;
            structural.killed += s.killed;
        }
        structural_total += structural.injected;
        structural_killed += structural.killed;
        for (std::size_t i = 0; i < verify::fault::kNumFaultClasses; ++i) {
            totals.per_class[i].injected += report.per_class[i].injected;
            totals.per_class[i].killed += report.per_class[i].killed;
        }
        for (const auto& s : report.survivors) {
            const bool dynamic = s.cls == FaultClass::Seu || s.cls == FaultClass::Glitch;
            if (dynamic) dynamic_survivors.emplace_back(entry.name, s);
        }

        const auto mapped = net::decompose_fanin(res.netlist, 2);
        const bool mapped_ok = verify::verify_speed_independence(mapped, res.graph).ok;

        const auto at = [&](FaultClass c) {
            return ratio(report.per_class[static_cast<std::size_t>(c)]);
        };
        table.add_row({entry.name, ratio(structural), at(FaultClass::DelaySchedule),
                       at(FaultClass::Seu), at(FaultClass::Glitch), mapped_ok ? "yes" : "NO"});
    }
    printf("%s\n", table.render().c_str());
    printf("overall mutation kill rate: %zu/%zu\n", structural_killed, structural_total);
    const auto& ds = totals.per_class[static_cast<std::size_t>(FaultClass::DelaySchedule)];
    const auto& seu = totals.per_class[static_cast<std::size_t>(FaultClass::Seu)];
    const auto& gl = totals.per_class[static_cast<std::size_t>(FaultClass::Glitch)];
    printf("delay-schedule walks alone catch %zu/%zu of the killed mutants\n", ds.killed,
           ds.injected);
    printf("dynamic faults: %zu/%zu SEUs and %zu/%zu glitches detected\n", seu.killed,
           seu.injected, gl.killed, gl.injected);

    if (!dynamic_survivors.empty()) {
        printf("\nDynamic-fault survivors (perturbation absorbed; witness from reset):\n");
        for (const auto& [name, s] : dynamic_survivors) {
            printf("  [%s] %s\n    witness:", name.c_str(), s.description.c_str());
            for (const auto& a : s.witness) printf(" %s", a.c_str());
            printf("\n");
            if (!s.span_path.empty()) printf("    found in: %s\n", s.span_path.c_str());
        }
    }

    printf("\nNote: a surviving structural mutant is not automatically a bug — dropping a\n"
           "literal can leave the function unchanged on the reachable codes, and an\n"
           "absorbed SEU/glitch means the circuit recovered into specified behaviour.\n"
           "The 2-input mapping column answers whether tree-decomposing the monotone\n"
           "region functions preserves speed independence on these controllers.\n");

    if (!obs_out.empty()) {
        const std::string err = obs::export_to_file(obs_out, force);
        if (!err.empty()) {
            std::fprintf(stderr, "%s\n", err.c_str());
            return 1;
        }
        printf("wrote %s\n", obs_out.c_str());
    }
    return 0;
}
