// Regenerates the paper's Figure 3 / equations (2): the MC-reduction of
// Figure 1 by inserting one state signal.
//
// Two independent reproductions are shown:
//   (a) our synthesis flow run on Figure 1 (it must insert exactly one
//       signal and produce a verified hazard-free netlist);
//   (b) the Figure-3 state graph transcribed from the paper, shown to
//       satisfy the (generalized) MC requirement with the paper's cubes
//       (Sd = x' shared across both ERs of +d, Sx = a'b'c').
//
// Usage: fig3_mc_form [--obs-out <path>] [--force]
//   --obs-out  write the si::obs trace of the run (Chrome trace-event
//              JSON; tracing is switched on if it is not already).
//              Refuses to overwrite an existing file without --force.
#include <cstdio>
#include <cstring>
#include <string>

#include "si/bench_stgs/figures.hpp"
#include "si/mc/requirement.hpp"
#include "si/netlist/print.hpp"
#include "si/obs/obs.hpp"
#include "si/sg/regions.hpp"
#include "si/synth/synthesize.hpp"

using namespace si;

int main(int argc, char** argv) {
    std::string obs_out;
    bool force = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--obs-out") == 0 && i + 1 < argc) {
            obs_out = argv[++i];
        } else if (std::strcmp(argv[i], "--force") == 0) {
            force = true;
        } else {
            std::fprintf(stderr, "usage: %s [--obs-out <path>] [--force]\n", argv[0]);
            return 2;
        }
    }
    if (!obs_out.empty() && obs::mode() != obs::Mode::Trace) obs::set_mode(obs::Mode::Trace);

    int failures = 0;

    printf("== (a) MC-reduction of Figure 1 by our synthesis flow ==\n");
    synth::SynthOptions opts;
    opts.enable_sharing = true;
    opts.verify_result = true;
    const auto res = synth::synthesize(bench::figure1(), opts);
    printf("%s\n\n", res.summary().c_str());
    printf("derived equations (compare with the paper's equations (2)):\n%s\n",
           net::to_equations(res.netlist).c_str());
    printf("inserted signals: %zu (paper: 1)\n", res.inserted.size());
    printf("verification: %s\n\n", res.verification.describe().c_str());
    if (res.inserted.size() != 1 || !res.verification.ok) ++failures;

    printf("== (b) the transcribed Figure 3 state graph ==\n");
    const auto f3 = bench::figure3();
    printf("%zu states over a b c d x (paper: 17)\n", f3.num_states());
    const sg::RegionAnalysis ra3(f3);
    const auto report = mc::check_requirement(ra3);
    printf("MC requirement satisfied: %s (paper: yes, after adding x)\n",
           report.satisfied() ? "yes" : "NO");
    printf("%s\n", report.describe(ra3).c_str());
    if (!report.satisfied() || f3.num_states() != 17) ++failures;

    printf("paper-vs-measured: the reduction to MC form \"adds nearly nothing to the\n"
           "complexity of implementation\" -- our netlist uses %zu literals across %zu\n"
           "AND gates for 3 latched signals.\n",
           res.netlist.stats().literals, res.netlist.stats().and_gates);

    if (!obs_out.empty()) {
        const std::string err = obs::export_to_file(obs_out, force);
        if (!err.empty()) {
            std::fprintf(stderr, "%s\n", err.c_str());
            return 2;
        }
        printf("wrote %s\n", obs_out.c_str());
    }
    return failures;
}
