// STG model and .g parser tests: construction, token game, parse errors,
// round-trips.
#include <gtest/gtest.h>

#include "si/stg/parse.hpp"
#include "si/stg/stg.hpp"
#include "si/util/error.hpp"

namespace si::stg {
namespace {

Stg two_phase() {
    // r+ -> a+ -> r- -> a- -> (r+), a simple handshake cycle.
    Stg net;
    net.name = "hs";
    const SignalId r = net.signals().add("r", SignalKind::Input);
    const SignalId a = net.signals().add("a", SignalKind::Output);
    const auto rp = net.add_transition({r, true});
    const auto ap = net.add_transition({a, true});
    const auto rm = net.add_transition({r, false});
    const auto am = net.add_transition({a, false});
    net.connect_tt(rp, ap);
    net.connect_tt(ap, rm);
    net.connect_tt(rm, am);
    const PlaceId p = net.connect_tt(am, rp);
    net.mark(p);
    return net;
}

TEST(Stg, BuildAndFire) {
    const Stg net = two_phase();
    net.validate();
    EXPECT_EQ(net.num_transitions(), 4u);
    EXPECT_EQ(net.num_places(), 4u);

    const Marking m0 = net.initial_marking();
    const TransitionId rp = net.find_transition({net.signals().find("r"), true}, 1);
    ASSERT_TRUE(rp.is_valid());
    EXPECT_TRUE(net.enabled(m0, rp));
    const TransitionId ap = net.find_transition({net.signals().find("a"), true}, 1);
    EXPECT_FALSE(net.enabled(m0, ap));

    const Marking m1 = net.fire(m0, rp);
    EXPECT_FALSE(net.enabled(m1, rp));
    EXPECT_TRUE(net.enabled(m1, ap));
}

TEST(Stg, TransitionLabels) {
    Stg net;
    const SignalId a = net.signals().add("a", SignalKind::Input);
    const auto t1 = net.add_transition({a, true}, 1);
    const auto t2 = net.add_transition({a, false}, 2);
    EXPECT_EQ(net.transition_label(t1), "a+");
    EXPECT_EQ(net.transition_label(t2), "a-/2");
}

TEST(Stg, DuplicateTransitionRejected) {
    Stg net;
    const SignalId a = net.signals().add("a", SignalKind::Input);
    (void)net.add_transition({a, true});
    EXPECT_THROW(net.add_transition({a, true}), SpecError);
}

TEST(Stg, DuplicateSignalRejected) {
    Stg net;
    net.signals().add("a", SignalKind::Input);
    EXPECT_THROW(net.signals().add("a", SignalKind::Output), SpecError);
}

TEST(Stg, ValidateRejectsDanglingTransition) {
    Stg net;
    const SignalId a = net.signals().add("a", SignalKind::Input);
    (void)net.add_transition({a, true});
    EXPECT_THROW(net.validate(), SpecError);
}

TEST(ParseG, MinimalHandshake) {
    const Stg net = read_g(R"(
# a comment
.model hs
.inputs r
.outputs a
.graph
r+ a+
a+ r-
r- a-
a- r+
.marking { <a-,r+> }
.end
)");
    EXPECT_EQ(net.name, "hs");
    EXPECT_EQ(net.signals().size(), 2u);
    EXPECT_EQ(net.num_transitions(), 4u);
    net.validate();
    // Exactly one token, on the implicit place between a- and r+.
    std::size_t tokens = 0;
    for (const auto t : net.initial_marking()) tokens += t;
    EXPECT_EQ(tokens, 1u);
}

TEST(ParseG, ExplicitPlacesAndChoice) {
    const Stg net = read_g(R"(
.model choice
.inputs a b
.outputs y
.graph
p0 a+ b+
a+ y+
b+ y+
y+ p1
p1 y-
y- p0
.marking { p0 }
.end
)");
    net.validate();
    const PlaceId p0 = net.find_place("p0");
    ASSERT_TRUE(p0.is_valid());
    EXPECT_EQ(net.initial_marking()[p0.index()], 1u);
    // p0 is a free-choice place with two consumers.
}

TEST(ParseG, InstanceSuffixes) {
    const Stg net = read_g(R"(
.model multi
.inputs a
.outputs y
.graph
a+ y+
y+ a-
a- y+/2
y+/2 y-
y- y-/2
y-/2 a+
.marking { <y-/2,a+> }
.end
)");
    EXPECT_TRUE(net.find_transition({net.signals().find("y"), true}, 2).is_valid());
    EXPECT_TRUE(net.find_transition({net.signals().find("y"), false}, 2).is_valid());
}

TEST(ParseG, TokenMultiplicity) {
    const Stg net = read_g(R"(
.model caps
.inputs a
.outputs y
.graph
p a+
a+ y+
y+ p
a+ q
q y-
y- a-
a- p2
p2 a+
.marking { p=2 p2 }
.end
)");
    EXPECT_EQ(net.initial_marking()[net.find_place("p").index()], 2u);
}

TEST(ParseG, Errors) {
    EXPECT_THROW(read_g(".bogus\n.end\n"), ParseError);
    EXPECT_THROW(read_g(".model x\n.inputs a\n.graph\na+ b+\n.marking { }\n.end\n"), ParseError); // undeclared b
    EXPECT_THROW(read_g(".model x\n.inputs a\n.graph\na+ p\n.marking missing-braces\n.end\n"), ParseError);
    EXPECT_THROW(read_g(".model x\n.inputs a\n.graph\np q\n.marking { p }\n.end\n"), ParseError); // place-to-place
    EXPECT_THROW(read_g(".model x\n.inputs a\n.graph\n"), ParseError);      // missing .end
    EXPECT_THROW(read_g(".model x\n.dummy d\n.end\n"), ParseError);         // dummies unsupported
}

TEST(ParseG, RoundTrip) {
    const char* text = R"(
.model rt
.inputs r x
.outputs a
.graph
r+ a+
a+ r-
r- x+
x+ a-
a- x-
x- r+
.marking { <x-,r+> }
.end
)";
    const Stg net1 = read_g(text);
    const std::string emitted = write_g(net1);
    const Stg net2 = read_g(emitted);
    EXPECT_EQ(net1.num_places(), net2.num_places());
    EXPECT_EQ(net1.num_transitions(), net2.num_transitions());
    EXPECT_EQ(net1.signals().size(), net2.signals().size());
    EXPECT_EQ(write_g(net2), emitted); // fixpoint after one round
}

TEST(ParseG, UnboundedPlaceDetected) {
    // A transition that only produces into p: p grows without bound; the
    // fire() guard trips at 255.
    Stg net;
    const SignalId a = net.signals().add("a", SignalKind::Input);
    const auto tp = net.add_transition({a, true});
    const auto tm = net.add_transition({a, false});
    const PlaceId loop = net.connect_tt(tp, tm);
    (void)loop;
    const PlaceId back = net.connect_tt(tm, tp);
    net.mark(back);
    const PlaceId sink = net.add_place("sink");
    net.connect_tp(tp, sink);
    // also consume sink somewhere to pass validate
    net.connect_pt(sink, tm);
    Marking m = net.initial_marking();
    m[sink.index()] = 255;
    EXPECT_THROW((void)net.fire(m, tp), SpecError);
}

} // namespace
} // namespace si::stg
