// Tests for the extension features around the core flow: the
// complex-gate comparator (Chu-style, CSC ⟺ implementable), explicit
// inverter materialization (Section III's C2), and the elementary-sum
// implementation of OR-causality regions in non-distributive graphs
// (Section IV / Theorem 2).
#include <gtest/gtest.h>

#include "si/bench_stgs/figures.hpp"
#include "si/bench_stgs/table1.hpp"
#include "si/mc/monotonous.hpp"
#include "si/mc/requirement.hpp"
#include "si/netlist/print.hpp"
#include "si/netlist/transform.hpp"
#include "si/sg/analysis.hpp"
#include "si/sg/from_stg.hpp"
#include "si/sg/read_sg.hpp"
#include "si/synth/complex_gate.hpp"
#include "si/synth/synthesize.hpp"
#include "si/util/error.hpp"
#include "si/verify/verifier.hpp"

namespace si {
namespace {

// A cyclic OR-causality controller: output y rises as soon as input a OR
// input b rises (detonant initial state, two minimal states in ER(+y)),
// output z sequences the return phase; y falls by AND causality.
sg::StateGraph or_causality() {
    return sg::read_sg(R"(
.model orc
.inputs a b
.outputs y z
.arcs
0000 a+ 1000
0000 b+ 0100
1000 y+ 1010
1000 b+ 1100
0100 y+ 0110
0100 a+ 1100
1100 y+ 1110
1010 b+ 1110
0110 a+ 1110
1110 z+ 1111
1111 a- 0111
1111 b- 1011
0111 b- 0011
1011 a- 0011
0011 y- 0001
0001 z- 0000
.initial 0000
.end
)");
}

TEST(ComplexGate, Figure1ImplementableUnderCsc) {
    // Figure 1 satisfies CSC, so the complex-gate methodology needs no
    // state signal at all — the paper's Section-I starting point.
    const auto g = bench::figure1();
    ASSERT_TRUE(sg::find_csc_violations(g).empty());
    const sg::RegionAnalysis ra(g);
    const auto nl = synth::build_complex_gate_implementation(ra);
    EXPECT_EQ(nl.stats().complex_gates, 2u); // c and d
    const auto v = verify::verify_speed_independence(nl, g);
    EXPECT_TRUE(v.ok) << v.describe();
}

TEST(ComplexGate, Figure4NextStateIsTheNaiveEquation) {
    // next(b) minimizes to a + c'd + (hold term) — the very SOP that is
    // hazardous as basic gates is fine as one atomic gate.
    const auto g = bench::figure4();
    const sg::RegionAnalysis ra(g);
    const auto nl = synth::build_complex_gate_implementation(ra);
    EXPECT_TRUE(verify::verify_speed_independence(nl, g).ok);
    const std::string eq = net::to_equations(nl);
    EXPECT_NE(eq.find("b = ["), std::string::npos);
}

TEST(ComplexGate, CscViolationRejected) {
    // Delement violates CSC; the complex-gate method must refuse.
    const auto g =
        sg::build_state_graph(bench::load(bench::table1_suite().back())); // Delement
    const sg::RegionAnalysis ra(g);
    EXPECT_THROW((void)synth::build_complex_gate_implementation(ra), SynthesisError);
}

TEST(ComplexGate, StatsAndPrinting) {
    const auto g = bench::figure1();
    const sg::RegionAnalysis ra(g);
    const auto nl = synth::build_complex_gate_implementation(ra);
    EXPECT_GT(nl.stats().literals, 0u);
    EXPECT_NE(net::to_verilog(nl).find("assign"), std::string::npos);
    // Complex gates list their read signals as fanins.
    for (const auto& gate : nl.gates())
        if (gate.kind == net::GateKind::Complex) EXPECT_FALSE(gate.fanins.empty());
}

TEST(Inverters, MaterializationPreservesStructureAddsNots) {
    const auto res = synth::synthesize(bench::figure1());
    const auto c2 = net::materialize_inversions(res.netlist);
    EXPECT_GT(c2.stats().inverters, 0u);
    // Only the C-element reset bubbles remain as inverted fanins.
    EXPECT_LT(c2.stats().input_inversions, res.netlist.stats().input_inversions);
    // AND/OR gates no longer carry inverted fanins.
    for (const auto& gate : c2.gates()) {
        if (gate.kind != net::GateKind::And && gate.kind != net::GateKind::Or) continue;
        for (const auto& f : gate.fanins) EXPECT_FALSE(f.inverted);
    }
}

TEST(Inverters, C2NotSpeedIndependentUnderUnboundedDelays) {
    // Section III: C2 (explicit inverters) is only hazard-free under the
    // relative bound d_inv^max < D_sn^min; the pure SI verifier must
    // reject it while C1 passes.
    const auto res = synth::synthesize(bench::figure1());
    ASSERT_TRUE(verify::verify_speed_independence(res.netlist, res.graph).ok);
    const auto c2 = net::materialize_inversions(res.netlist);
    const auto v = verify::verify_speed_independence(c2, res.graph);
    EXPECT_FALSE(v.ok);
    EXPECT_EQ(v.violations[0].kind, verify::ViolationKind::GateDisabled);
}

TEST(FaninDecomposition, RespectsBoundAndKeepsFunction) {
    const auto res = synth::synthesize(bench::figure1());
    const auto mapped = net::decompose_fanin(res.netlist, 2);
    for (const auto& gate : mapped.gates()) {
        if (gate.kind == net::GateKind::And || gate.kind == net::GateKind::Or)
            EXPECT_LE(gate.fanins.size(), 2u);
    }
    // Same steady-state function: identical initial relaxation.
    EXPECT_GE(mapped.num_gates(), res.netlist.num_gates());
    const BitVec v1 = res.netlist.initial_values();
    const BitVec v2 = mapped.initial_values();
    for (std::size_t g = 0; g < res.netlist.num_gates(); ++g)
        EXPECT_EQ(v1.test(g), v2.test(g)) << res.netlist.gate(GateId(g)).name;
}

TEST(FaninDecomposition, WideGateBecomesTree) {
    const auto spec = bench::figure1();
    net::Netlist nl(spec.signals());
    std::vector<net::Fanin> ins;
    for (const char* n : {"a", "b"}) {
        const GateId g = nl.add_gate(net::GateKind::Input, n, {}, spec.signals().find(n));
        ins.push_back({g, false});
        ins.push_back({g, true});
    }
    const GateId wide = nl.add_gate(net::GateKind::And, "w", ins);
    (void)wide;
    const auto mapped = net::decompose_fanin(nl, 2);
    EXPECT_GT(mapped.num_gates(), nl.num_gates());
    std::size_t wide_count = 0;
    for (const auto& gate : mapped.gates())
        if (gate.fanins.size() > 2) ++wide_count;
    EXPECT_EQ(wide_count, 0u);
    EXPECT_THROW((void)net::decompose_fanin(nl, 1), InternalError);
}

TEST(FaninDecomposition, CanBreakSpeedIndependence) {
    // Splitting a region AND gate inserts an internal gate whose
    // switching no latch acknowledges: the MC guarantee is for the
    // one-gate-per-region-function architecture, and the verifier shows
    // the decomposed netlist of nak-pa is no longer SI.
    const auto graph = sg::build_state_graph(bench::load(bench::table1_suite().front()));
    const auto res = synth::synthesize(graph);
    ASSERT_TRUE(verify::verify_speed_independence(res.netlist, res.graph).ok);
    const auto mapped = net::decompose_fanin(res.netlist, 2);
    const auto v = verify::verify_speed_independence(mapped, res.graph);
    EXPECT_FALSE(v.ok);
    EXPECT_EQ(v.violations[0].kind, verify::ViolationKind::GateDisabled);
}

TEST(OrCausality, GraphIsSemiModularNotDistributive) {
    const auto g = or_causality();
    ASSERT_FALSE(sg::check_well_formed(g).has_value());
    EXPECT_TRUE(sg::is_semimodular(g));
    EXPECT_FALSE(sg::is_output_distributive(g)); // detonant initial state
    const sg::RegionAnalysis ra(g);
    // Lemma 1: the detonant region has several minimal states.
    for (const auto& r : ra.regions()) {
        if (g.signals()[r.signal].name != "y" || !r.rising) continue;
        EXPECT_EQ(r.minimal_states.size(), 2u);
        EXPECT_FALSE(r.unique_entry());
    }
}

TEST(OrCausality, Theorem2NoSingleCubeButElementarySumWorks) {
    const auto g = or_causality();
    const sg::RegionAnalysis ra(g);
    RegionId yp = RegionId::invalid();
    for (std::size_t i = 0; i < ra.regions().size(); ++i)
        if (g.signals()[ra.region(RegionId(i)).signal].name == "y" &&
            ra.region(RegionId(i)).rising)
            yp = RegionId(i);
    ASSERT_TRUE(yp.is_valid());
    // Theorem 2: no monotonous cover cube exists for the detonant region.
    EXPECT_FALSE(mc::find_mc_cube(ra, yp).ok());
    // Section IV: the elementary sum a + b implements it directly.
    const auto sum = mc::find_elementary_sum(ra, yp);
    ASSERT_TRUE(sum.has_value());
    EXPECT_EQ(sum->size(), 2u);
    EXPECT_EQ(sum->to_expr(g.signals().names()), "a + b");
    EXPECT_TRUE(mc::check_elementary_sum(ra, yp, *sum).empty());
}

TEST(OrCausality, CheckElementarySumRejectsBadSums) {
    const auto g = or_causality();
    const sg::RegionAnalysis ra(g);
    RegionId yp = RegionId::invalid();
    for (std::size_t i = 0; i < ra.regions().size(); ++i)
        if (g.signals()[ra.region(RegionId(i)).signal].name == "y" &&
            ra.region(RegionId(i)).rising)
            yp = RegionId(i);
    // A sum missing a literal fails to cover the ER.
    Cover partial(g.num_signals());
    Cube la(g.num_signals());
    la.set_lit(g.signals().find("a"), Lit::One);
    partial.add(la);
    EXPECT_FALSE(mc::check_elementary_sum(ra, yp, partial).empty());
    // A sum containing a wide cube is not elementary.
    Cover wide(g.num_signals());
    Cube ab(g.num_signals());
    ab.set_lit(g.signals().find("a"), Lit::One);
    ab.set_lit(g.signals().find("b"), Lit::One);
    wide.add(ab);
    EXPECT_FALSE(mc::check_elementary_sum(ra, yp, wide).empty());
}

TEST(OrCausality, EndToEndSynthesisVerifies) {
    const auto g = or_causality();
    synth::SynthOptions opts;
    opts.verify_result = true;
    const auto res = synth::synthesize(g, opts);
    EXPECT_TRUE(res.inserted.empty()); // no state signal needed
    EXPECT_TRUE(res.mc.satisfied());
    EXPECT_TRUE(res.verification.ok) << res.verification.describe();
    // y's up-function is the bare OR of the two input wires.
    for (const auto& n : res.networks) {
        if (res.graph.signals()[n.signal].name != "y") continue;
        EXPECT_EQ(n.up_cubes.size(), 2u);
        for (const auto& c : n.up_cubes) EXPECT_EQ(c.literal_count(), 1u);
    }
    const std::string eq = net::to_equations(res.netlist);
    EXPECT_NE(eq.find("Sy = a + b"), std::string::npos);
}

} // namespace
} // namespace si
