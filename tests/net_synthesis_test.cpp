// Region-theory Petri-net synthesis: every derived net must unfold back
// to a behaviour bisimilar with the source state graph.
#include <gtest/gtest.h>

#include "si/bench_stgs/figures.hpp"
#include "si/bench_stgs/generators.hpp"
#include "si/bench_stgs/table1.hpp"
#include "si/sg/from_stg.hpp"
#include "si/sg/net_synthesis.hpp"
#include "si/sg/projection.hpp"
#include "si/sg/read_sg.hpp"
#include "si/stg/parse.hpp"
#include "si/stg/structure.hpp"
#include "si/synth/synthesize.hpp"
#include "si/util/error.hpp"

namespace si::sg {
namespace {

void expect_roundtrip(const StateGraph& g, bool expect_regions = true) {
    const auto result = synthesize_stg(g);
    const auto rebuilt = build_state_graph(result.net);
    const auto fwd = check_projection(rebuilt, g);
    const auto bwd = check_projection(g, rebuilt);
    EXPECT_TRUE(fwd.ok) << g.name << ": " << fwd.reason;
    EXPECT_TRUE(bwd.ok) << g.name << ": " << bwd.reason;
    if (expect_regions) EXPECT_TRUE(result.used_regions) << g.name;
}

TEST(NetSynthesis, Handshake) {
    expect_roundtrip(read_sg(R"(
.model hs
.inputs r
.outputs a
.arcs
00 r+ 10
10 a+ 11
11 r- 01
01 a- 00
.initial 00
.end
)"));
}

TEST(NetSynthesis, ConcurrencyDiamondGetsCompactNet) {
    const auto g = build_state_graph(bench::make_fork_join(3));
    const auto result = synthesize_stg(g);
    EXPECT_TRUE(result.used_regions);
    // A region net should be far smaller than one-place-per-state
    // (fork-join of 3 has 16 states).
    EXPECT_LT(result.net.num_places(), g.num_states());
    expect_roundtrip(g);
}

TEST(NetSynthesis, PaperFigures) {
    expect_roundtrip(bench::figure1());
    expect_roundtrip(bench::figure3());
    expect_roundtrip(bench::figure4());
}

class Table1NetSynthesis : public ::testing::TestWithParam<bench::Table1Entry> {};

TEST_P(Table1NetSynthesis, RoundTripsOriginalStg) {
    const auto g = build_state_graph(bench::load(GetParam()));
    expect_roundtrip(g);
}

TEST_P(Table1NetSynthesis, FoldsTransformedGraphBackToAnStg) {
    // The headline use: after signal insertion, export the transformed
    // specification as a .g STG again, with the inserted signal as an
    // internal STG signal.
    const auto spec = build_state_graph(bench::load(GetParam()));
    const auto synth_result = synth::synthesize(spec);
    const auto net_result = synthesize_stg(synth_result.graph);
    const auto rebuilt = build_state_graph(net_result.net);
    EXPECT_TRUE(check_projection(rebuilt, synth_result.graph).ok);
    EXPECT_TRUE(check_projection(synth_result.graph, rebuilt).ok);
    // And hiding the inserted signals, it still implements the original.
    EXPECT_TRUE(check_projection(rebuilt, spec).ok);
    // The .g text round-trips through the parser.
    const auto reparsed = stg::read_g(stg::write_g(net_result.net));
    EXPECT_TRUE(check_projection(build_state_graph(reparsed), synth_result.graph).ok);
}

INSTANTIATE_TEST_SUITE_P(Suite, Table1NetSynthesis, ::testing::ValuesIn(bench::table1_suite()),
                         [](const ::testing::TestParamInfo<bench::Table1Entry>& info) {
                             std::string name = info.param.name;
                             for (auto& c : name)
                                 if (c == '-') c = '_';
                             return name;
                         });

TEST(NetSynthesis, RegionNetsAreSafe) {
    for (const auto& e : bench::table1_suite()) {
        const auto g = build_state_graph(bench::load(e));
        const auto result = synthesize_stg(g);
        const auto report = stg::analyze_structure(result.net);
        EXPECT_TRUE(report.safe) << e.name;
        EXPECT_TRUE(report.live) << e.name << ": " << report.offender;
    }
}

TEST(NetSynthesis, StateMachineFallbackAlwaysWorks) {
    NetSynthesisOptions opts;
    opts.max_candidates = 0; // starve the region search
    const auto g = bench::figure1();
    const auto result = synthesize_stg(g, opts);
    EXPECT_FALSE(result.used_regions);
    const auto rebuilt = build_state_graph(result.net);
    EXPECT_TRUE(check_projection(rebuilt, g).ok);
    EXPECT_EQ(result.net.num_places(), g.num_states());
}

TEST(NetSynthesis, FallbackCanBeForbidden) {
    NetSynthesisOptions opts;
    opts.max_candidates = 0;
    opts.forbid_state_machine_fallback = true;
    EXPECT_THROW((void)synthesize_stg(bench::figure1(), opts), SynthesisError);
}

TEST(NetSynthesis, GeneratorsRoundTrip) {
    expect_roundtrip(build_state_graph(bench::make_pipeline(3)));
    expect_roundtrip(build_state_graph(bench::make_ring(2)));
    expect_roundtrip(build_state_graph(bench::make_sequencer(2)));
}

} // namespace
} // namespace si::sg
