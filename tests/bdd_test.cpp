// ROBDD manager tests (cross-checked against truth tables) and symbolic
// reachability vs the explicit token game.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <random>

#include "si/bdd/bdd.hpp"
#include "si/bdd/symbolic.hpp"
#include "si/bench_stgs/generators.hpp"
#include "si/bench_stgs/table1.hpp"
#include "si/sg/analysis.hpp"
#include "si/sg/from_stg.hpp"
#include "si/stg/parse.hpp"
#include "si/util/error.hpp"

namespace si::bdd {
namespace {

BitVec code_of(std::size_t bits, std::size_t n) {
    BitVec v(n);
    for (std::size_t i = 0; i < n; ++i)
        if ((bits >> i) & 1u) v.set(i);
    return v;
}

TEST(Bdd, TerminalsAndVars) {
    Manager m(3);
    EXPECT_EQ(m.apply_not(Manager::kTrue), Manager::kFalse);
    const Ref a = m.var(0);
    EXPECT_EQ(m.apply_not(m.apply_not(a)), a);       // canonical form
    EXPECT_EQ(m.apply_and(a, Manager::kFalse), Manager::kFalse);
    EXPECT_EQ(m.apply_or(a, Manager::kTrue), Manager::kTrue);
    EXPECT_EQ(m.apply_and(a, a), a);
    EXPECT_EQ(m.apply_xor(a, a), Manager::kFalse);
    EXPECT_EQ(m.nvar(0), m.apply_not(a));
    EXPECT_THROW((void)m.var(3), InternalError);
}

TEST(Bdd, CanonicityMeansEqualityIsStructural) {
    Manager m(3);
    const Ref a = m.var(0), b = m.var(1), c = m.var(2);
    // (a & b) | (a & c) == a & (b | c)
    const Ref lhs = m.apply_or(m.apply_and(a, b), m.apply_and(a, c));
    const Ref rhs = m.apply_and(a, m.apply_or(b, c));
    EXPECT_EQ(lhs, rhs);
    // De Morgan.
    EXPECT_EQ(m.apply_not(m.apply_and(a, b)), m.apply_or(m.apply_not(a), m.apply_not(b)));
}

TEST(Bdd, RandomFormulasMatchTruthTables) {
    std::mt19937 rng(5);
    for (int trial = 0; trial < 60; ++trial) {
        const std::size_t n = 4;
        Manager m(n);
        // Random formula as a vector of ops over a stack.
        std::vector<Ref> stack{m.var(0), m.var(1), m.var(2), m.var(3)};
        std::vector<std::function<bool(const BitVec&)>> sem{
            [](const BitVec& a) { return a.test(0); }, [](const BitVec& a) { return a.test(1); },
            [](const BitVec& a) { return a.test(2); }, [](const BitVec& a) { return a.test(3); }};
        for (int step = 0; step < 12; ++step) {
            const std::size_t i = rng() % stack.size();
            const std::size_t j = rng() % stack.size();
            const int op = static_cast<int>(rng() % 4);
            Ref f;
            std::function<bool(const BitVec&)> fs;
            const auto si_ = sem[i];
            const auto sj = sem[j];
            switch (op) {
            case 0: f = m.apply_and(stack[i], stack[j]); fs = [=](const BitVec& a) { return si_(a) && sj(a); }; break;
            case 1: f = m.apply_or(stack[i], stack[j]); fs = [=](const BitVec& a) { return si_(a) || sj(a); }; break;
            case 2: f = m.apply_xor(stack[i], stack[j]); fs = [=](const BitVec& a) { return si_(a) != sj(a); }; break;
            default: f = m.apply_not(stack[i]); fs = [=](const BitVec& a) { return !si_(a); }; break;
            }
            stack.push_back(f);
            sem.push_back(fs);
        }
        // Validate the final formula on all 16 assignments + sat_count.
        const Ref f = stack.back();
        std::size_t expect_count = 0;
        for (std::size_t bits = 0; bits < 16; ++bits) {
            const BitVec a = code_of(bits, n);
            const bool expect = sem.back()(a);
            EXPECT_EQ(m.eval(f, a), expect);
            expect_count += expect ? 1 : 0;
        }
        EXPECT_DOUBLE_EQ(m.sat_count(f), static_cast<double>(expect_count));
        if (f != Manager::kFalse) {
            EXPECT_TRUE(m.eval(f, m.any_sat(f)));
        }
    }
}

TEST(Bdd, RestrictAndExists) {
    Manager m(3);
    const Ref a = m.var(0), b = m.var(1), c = m.var(2);
    const Ref f = m.apply_or(m.apply_and(a, b), c); // ab + c
    EXPECT_EQ(m.restrict_var(f, 0, true), m.apply_or(b, c));
    EXPECT_EQ(m.restrict_var(f, 0, false), c);
    BitVec mask(3);
    mask.set(0);
    // ∃a. ab + c == b + c
    EXPECT_EQ(m.exists(f, mask), m.apply_or(b, c));
}

TEST(Bdd, RenameShiftsSupport) {
    Manager m(4);
    const Ref f = m.apply_and(m.var(0), m.var(2)); // x0 & x2
    std::vector<std::size_t> map{1, 1, 3, 3};      // 0->1, 2->3 (monotone)
    const Ref g = m.rename(f, map);
    EXPECT_EQ(g, m.apply_and(m.var(1), m.var(3)));
}

TEST(Bdd, SizeCountsNodes) {
    Manager m(2);
    EXPECT_EQ(m.size(Manager::kTrue), 1u);
    const Ref f = m.apply_and(m.var(0), m.var(1));
    EXPECT_EQ(m.size(f), 4u); // two decision nodes + two terminals
}

TEST(Symbolic, MatchesExplicitOnTable1) {
    for (const auto& e : bench::table1_suite()) {
        const auto net = bench::load(e);
        const auto explicit_states = sg::build_state_graph(net).num_states();
        const auto sym = symbolic_reachability(net);
        EXPECT_TRUE(sym.safe) << e.name;
        EXPECT_DOUBLE_EQ(sym.reachable_markings, static_cast<double>(explicit_states))
            << e.name;
    }
}

class SymbolicForkJoin : public ::testing::TestWithParam<int> {};

TEST_P(SymbolicForkJoin, CountsMatchExplicit) {
    const auto net = bench::make_fork_join(GetParam());
    const auto explicit_states = sg::build_state_graph(net).num_states();
    const auto sym = symbolic_reachability(net);
    EXPECT_DOUBLE_EQ(sym.reachable_markings, static_cast<double>(explicit_states));
    EXPECT_TRUE(sym.safe);
}
INSTANTIATE_TEST_SUITE_P(Widths, SymbolicForkJoin, ::testing::Values(1, 2, 4, 8, 10));

TEST(Symbolic, LargeForkJoinBeyondExplicitComfort) {
    // 2^21 markings; the reachable-set BDD stays tiny.
    const auto sym = symbolic_reachability(bench::make_fork_join(20));
    EXPECT_DOUBLE_EQ(sym.reachable_markings, std::pow(2.0, 21));
    EXPECT_LT(sym.set_nodes, 5000u);
}

TEST(Symbolic, UnsafeNetFlagged) {
    // a+ produces into p, which is already marked when a+ is enabled.
    const auto net = stg::read_g(R"(
.model unsafe
.inputs a
.outputs y
.graph
q a+
a+ p
p y+
y+ q
.marking { p q }
.end
)");
    const auto sym = symbolic_reachability(net);
    EXPECT_FALSE(sym.safe);
}

TEST(Symbolic, CscAgreesWithExplicitOnTable1) {
    for (const auto& e : bench::table1_suite()) {
        const auto net = bench::load(e);
        const auto g = sg::build_state_graph(net);
        const bool explicit_csc = sg::find_csc_violations(g).empty();
        const bool explicit_usc = sg::has_unique_state_coding(g);
        const auto sym = symbolic_csc(net);
        EXPECT_EQ(sym.csc, explicit_csc) << e.name;
        EXPECT_EQ(sym.usc, explicit_usc) << e.name;
        EXPECT_DOUBLE_EQ(sym.reachable_states, static_cast<double>(g.num_states())) << e.name;
        if (!sym.csc) EXPECT_FALSE(sym.conflict_signal.empty());
    }
}

TEST(Symbolic, CscOnGenerators) {
    // Fork-joins have unique codes; sequencers violate CSC by design.
    const auto fj = symbolic_csc(bench::make_fork_join(6));
    EXPECT_TRUE(fj.csc);
    EXPECT_TRUE(fj.usc);
    const auto seq = symbolic_csc(bench::make_sequencer(3));
    EXPECT_FALSE(seq.csc);
    EXPECT_FALSE(seq.usc);
}

TEST(Symbolic, CscOnWideForkJoin) {
    // 2^17 states checked pairwise on the BDD pairing without ever
    // materializing a state table (the clustered variable order keeps
    // the reachable set linear in the width).
    const auto wide = symbolic_csc(bench::make_fork_join(16));
    EXPECT_TRUE(wide.csc);
    EXPECT_TRUE(wide.usc);
    EXPECT_DOUBLE_EQ(wide.reachable_states, std::pow(2.0, 17));
}

TEST(Symbolic, NonSafeInitialMarkingRejected) {
    const auto net = stg::read_g(R"(
.model twotokens
.inputs a
.outputs y
.graph
p a+
a+ y+
y+ p
.marking { p=2 }
.end
)");
    EXPECT_THROW((void)symbolic_reachability(net), SpecError);
}

} // namespace
} // namespace si::bdd
