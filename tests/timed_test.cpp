// Bounded-delay (inertial) verification: Section III's inverter-timing
// claim, plus semantic sanity of the timed exploration itself.
#include <gtest/gtest.h>

#include "si/bench_stgs/figures.hpp"
#include "si/bench_stgs/generators.hpp"
#include "si/netlist/transform.hpp"
#include "si/sg/from_stg.hpp"
#include "si/synth/synthesize.hpp"
#include "si/util/error.hpp"
#include "si/verify/timed.hpp"
#include "si/verify/verifier.hpp"

namespace si::verify {
namespace {

TEST(Timed, SpeedIndependentNetlistsConformUnderAnyBounds) {
    // A netlist proven SI under unbounded delays stays conformant under
    // every bounded assignment (bounded runs are a subset of unbounded).
    const auto res = synth::synthesize(bench::figure1());
    ASSERT_TRUE(verify_speed_independence(res.netlist, res.graph).ok);
    for (const DelayBounds g : {DelayBounds{1, 1}, DelayBounds{1, 3}, DelayBounds{2, 5}}) {
        const auto r =
            verify_bounded_delay(res.netlist, res.graph, uniform_bounds(res.netlist, g, g));
        EXPECT_TRUE(r.ok) << r.describe();
    }
}

TEST(Timed, C2ConformsUnderThePaperBound) {
    // Section III: explicit inverters are safe while d_inv^max is below
    // the minimal signal-network delay (AND + OR + latch >= 3 here).
    const auto res = synth::synthesize(bench::figure1());
    const auto c2 = net::materialize_inversions(res.netlist);
    ASSERT_FALSE(verify_speed_independence(c2, res.graph).ok); // pure SI rejects it
    const auto r = verify_bounded_delay(c2, res.graph, uniform_bounds(c2, {1, 2}, {1, 1}));
    EXPECT_TRUE(r.ok) << r.describe();
    EXPECT_GT(r.pulses_filtered, 0u); // the races exist but are filtered
}

TEST(Timed, C2FailsWithSlowInverters) {
    const auto res = synth::synthesize(bench::figure1());
    const auto c2 = net::materialize_inversions(res.netlist);
    const auto r = verify_bounded_delay(c2, res.graph, uniform_bounds(c2, {1, 2}, {6, 8}));
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.violation.find("not enabled"), std::string::npos);
    EXPECT_FALSE(r.trace.empty());
    EXPECT_NE(r.describe().find("VIOLATION"), std::string::npos);
}

TEST(Timed, Figure4NaiveCircuitIsFineUnderBoundedDelays) {
    // The paper's Example-2 hazard is a pure-delay phenomenon: under
    // inertial bounded delays the runt pulse on gate t is filtered and
    // the circuit conforms — which is exactly why the unbounded model is
    // the meaningful one for speed independence.
    const auto g = bench::figure4();
    net::Netlist nl(g.signals());
    const GateId ga = nl.add_gate(net::GateKind::Input, "a", {}, g.signals().find("a"));
    const GateId gc = nl.add_gate(net::GateKind::Input, "c", {}, g.signals().find("c"));
    const GateId gd = nl.add_gate(net::GateKind::Input, "d", {}, g.signals().find("d"));
    const GateId t = nl.add_gate(net::GateKind::And, "t", {{gc, true}, {gd, false}});
    nl.add_gate(net::GateKind::Or, "b", {{ga, false}, {t, false}}, g.signals().find("b"));
    ASSERT_FALSE(verify_speed_independence(nl, g).ok);
    const auto r = verify_bounded_delay(nl, g, uniform_bounds(nl, {1, 1}, {1, 1}));
    EXPECT_TRUE(r.ok) << r.describe();
    EXPECT_GT(r.pulses_filtered, 0u);
}

TEST(Timed, NonConformantNetlistCaught) {
    const auto g = sg::build_state_graph(bench::make_pipeline(1));
    net::Netlist nl(g.signals());
    const GateId in = nl.add_gate(net::GateKind::Input, "r", {}, g.signals().find("r"));
    nl.add_gate(net::GateKind::Not, "s0", {{in, false}}, g.signals().find("s0"));
    const auto r = verify_bounded_delay(nl, g, uniform_bounds(nl, {1, 1}, {1, 1}));
    ASSERT_FALSE(r.ok);
}

TEST(Timed, DeadlockCaught) {
    const auto g = sg::build_state_graph(bench::make_pipeline(1));
    net::Netlist nl(g.signals());
    const GateId in = nl.add_gate(net::GateKind::Input, "r", {}, g.signals().find("r"));
    const GateId dead = nl.add_gate(net::GateKind::And, "z", {{in, false}, {in, true}});
    nl.add_gate(net::GateKind::Wire, "s0", {{dead, false}}, g.signals().find("s0"));
    const auto r = verify_bounded_delay(nl, g, uniform_bounds(nl, {1, 1}, {1, 1}));
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.violation.find("deadlock"), std::string::npos);
}

TEST(Timed, BoundsSizeChecked) {
    const auto res = synth::synthesize(bench::figure1());
    std::vector<DelayBounds> wrong(2);
    EXPECT_THROW((void)verify_bounded_delay(res.netlist, res.graph, wrong), InternalError);
}

} // namespace
} // namespace si::verify
