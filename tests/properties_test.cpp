// Theorem-level property tests on randomly generated specifications.
//
// The generator produces random cyclic STGs (every signal alternates
// +/-, one or two toggle pairs per signal, random interleaving), which
// are exactly the well-formed sequential control specs of the paper's
// benchmark class. On each one we check the paper's theorems:
//   Thm 3: synthesized implementations verify speed-independent,
//   Thm 4: MC-satisfying graphs satisfy CSC,
//   Cor 1: MC-satisfying graphs are persistent,
// plus structural region invariants and STG round-trips.
#include <gtest/gtest.h>

#include <random>

#include "si/bench_stgs/generators.hpp"
#include "si/mc/cover_cube.hpp"
#include "si/mc/requirement.hpp"
#include "si/sg/analysis.hpp"
#include "si/sg/from_stg.hpp"
#include "si/sg/projection.hpp"
#include "si/sg/regions.hpp"
#include "si/stg/parse.hpp"
#include "si/synth/synthesize.hpp"
#include "si/util/error.hpp"

namespace si {
namespace {

// Builds a random consistent cyclic STG: each signal contributes an
// alternating +/- subsequence, merged into one cycle at random offsets.
std::string random_cycle_g(unsigned seed) {
    std::mt19937 rng(seed);
    const std::size_t nsignals = 3 + rng() % 3; // 3..5
    std::vector<std::string> names;
    for (std::size_t i = 0; i < nsignals; ++i) names.push_back(std::string(1, char('a' + i)));

    // Retry until no two cyclically adjacent transitions belong to the
    // same signal — an event nothing acknowledges in between is an
    // unobservable pulse, outside the class of implementable control
    // specs the paper's benchmarks live in.
    std::vector<std::string> seq;
    for (int attempt = 0; attempt < 200; ++attempt) {
        seq.clear();
        for (std::size_t i = 0; i < nsignals; ++i) {
            const int pairs = 1 + static_cast<int>(rng() % 2);
            std::vector<std::string> sub;
            for (int p = 1; p <= pairs; ++p) {
                const std::string suffix = p == 1 ? "" : "/" + std::to_string(p);
                sub.push_back(names[i] + "+" + suffix);
                sub.push_back(names[i] + "-" + suffix);
            }
            // Insert sub keeping its relative order: each element lands
            // strictly after the previous one, so alternation survives.
            std::size_t min_pos = 0;
            for (const auto& t : sub) {
                const std::size_t pos = min_pos + rng() % (seq.size() - min_pos + 1);
                seq.insert(seq.begin() + static_cast<std::ptrdiff_t>(pos), t);
                min_pos = pos + 1;
            }
        }
        bool adjacent_same = false;
        for (std::size_t i = 0; i < seq.size(); ++i)
            if (seq[i][0] == seq[(i + 1) % seq.size()][0]) adjacent_same = true;
        if (!adjacent_same) break;
    }

    // Assign roles: at least one output, at least one input.
    std::string inputs, outputs;
    for (std::size_t i = 0; i < nsignals; ++i) {
        const bool is_input = (i == 0) ? true : (i == 1 ? false : rng() % 2 == 0);
        (is_input ? inputs : outputs) += " " + names[i];
    }

    std::string g = ".model rnd" + std::to_string(seed) + "\n.inputs" + inputs + "\n.outputs" +
                    outputs + "\n.graph\n";
    for (std::size_t i = 0; i < seq.size(); ++i)
        g += seq[i] + " " + seq[(i + 1) % seq.size()] + "\n";
    g += ".marking { <" + seq.back() + "," + seq.front() + "> }\n.end\n";
    return g;
}

class RandomSpec : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomSpec, StgRoundTripPreservesBehaviour) {
    const auto net1 = stg::read_g(random_cycle_g(GetParam()));
    const auto net2 = stg::read_g(stg::write_g(net1));
    const auto g1 = sg::build_state_graph(net1);
    const auto g2 = sg::build_state_graph(net2);
    EXPECT_EQ(g1.num_states(), g2.num_states());
    EXPECT_EQ(g1.num_arcs(), g2.num_arcs());
    EXPECT_EQ(g1.state(g1.initial()).code.to_string(), g2.state(g2.initial()).code.to_string());
}

TEST_P(RandomSpec, RegionInvariants) {
    const auto g = sg::build_state_graph(stg::read_g(random_cycle_g(GetParam())));
    const sg::RegionAnalysis ra(g);
    for (std::size_t ri = 0; ri < ra.regions().size(); ++ri) {
        const auto& r = ra.region(RegionId(ri));
        // ER nonempty; QR disjoint from ER; CFR is their union.
        EXPECT_TRUE(r.states.any());
        BitVec overlap = r.states & r.quiescent;
        EXPECT_TRUE(overlap.none());
        EXPECT_EQ(r.cfr, r.states | r.quiescent);
        // Minimal states lie inside the region.
        for (const auto s : r.minimal_states) EXPECT_TRUE(r.states.test(s.index()));
        // Ordered signals are constant across the ER.
        r.ordered_signals.for_each_set([&](std::size_t vi) {
            const std::size_t sample = r.states.find_first();
            const bool value = g.value(StateId(sample), SignalId(vi));
            r.states.for_each_set([&](std::size_t si) {
                EXPECT_EQ(g.value(StateId(si), SignalId(vi)), value);
            });
        });
        // Every cover cube covers its whole ER (Def 15 consequence).
        const Cube c = mc::smallest_cover_cube(ra, RegionId(ri));
        r.states.for_each_set([&](std::size_t si) {
            EXPECT_TRUE(c.contains_minterm(g.state(StateId(si)).code));
        });
        // region_containing agrees with membership.
        r.states.for_each_set([&](std::size_t si) {
            EXPECT_EQ(ra.region_containing(StateId(si), r.signal), RegionId(ri));
        });
    }
}

TEST_P(RandomSpec, SequentialCyclesAreCleanSpecs) {
    const auto g = sg::build_state_graph(stg::read_g(random_cycle_g(GetParam())));
    EXPECT_TRUE(sg::is_semimodular(g));
    EXPECT_TRUE(sg::is_output_distributive(g));
    EXPECT_FALSE(sg::check_well_formed(g).has_value());
}

// Some random cycles contain input bursts that erase all
// circuit-observable state (the environment toggles inputs back to a
// previously seen code with no output event in between). Such specs have
// NO speed-independent implementation — state-signal insertion cannot
// delay inputs — and the tool reports that honestly. Those seeds are
// skipped here; the aggregate test below bounds how often it may happen.
TEST_P(RandomSpec, SynthesisTheorems) {
    const auto g = sg::build_state_graph(stg::read_g(random_cycle_g(GetParam())));
    synth::SynthOptions opts;
    opts.verify_result = true;
    std::optional<synth::SynthesisResult> maybe;
    try {
        maybe = synth::synthesize(g, opts);
    } catch (const SynthesisError& e) {
        GTEST_SKIP() << "spec not SI-implementable: " << e.what();
    }
    const synth::SynthesisResult& res = *maybe;

    // Theorem 3: the standard C-implementation of an MC-satisfying graph
    // is semi-modular — our verifier must agree.
    ASSERT_TRUE(res.mc.satisfied());
    EXPECT_TRUE(res.verification.ok) << res.verification.describe();

    // Theorem 4: MC implies CSC.
    EXPECT_TRUE(sg::find_csc_violations(res.graph).empty());

    // Corollary 1: MC implies persistency (of non-input regions).
    const sg::RegionAnalysis ra(res.graph);
    EXPECT_TRUE(ra.all_persistent());

    // All cubes used by the netlist are correct covers (Def 16) and all
    // excitation functions consistent (Def 13).
    for (const auto& network : res.networks) {
        Cover up(res.graph.num_signals());
        for (const auto& c : network.up_cubes) up.add(c);
        Cover down(res.graph.num_signals());
        for (const auto& c : network.down_cubes) down.add(c);
        EXPECT_FALSE(mc::check_consistent_excitation(ra, network.signal, true, up).has_value());
        EXPECT_FALSE(mc::check_consistent_excitation(ra, network.signal, false, down).has_value());
    }
}

TEST_P(RandomSpec, RsImplementationTheorem3) {
    const auto g = sg::build_state_graph(stg::read_g(random_cycle_g(GetParam())));
    synth::SynthOptions opts;
    opts.build.use_rs_latches = true;
    opts.verify_result = true;
    try {
        const auto res = synth::synthesize(g, opts);
        EXPECT_TRUE(res.verification.ok) << res.verification.describe();
    } catch (const SynthesisError& e) {
        GTEST_SKIP() << "spec not SI-implementable: " << e.what();
    }
}

TEST(RandomSpecAggregate, MostSeedsSynthesize) {
    // The generator's class is dominated by implementable specs; the
    // unresolvable-input-burst cases must stay a small minority, and
    // every failure must be the explicit non-convergence report (never a
    // crash, a hang, or a bogus netlist).
    int ok = 0, refused = 0;
    for (unsigned seed = 1; seed < 41; ++seed) {
        const auto g = sg::build_state_graph(stg::read_g(random_cycle_g(seed)));
        try {
            synth::SynthOptions opts;
            opts.verify_result = true;
            const auto res = synth::synthesize(g, opts);
            EXPECT_TRUE(res.verification.ok) << "seed " << seed;
            ++ok;
        } catch (const SynthesisError&) {
            ++refused;
        }
    }
    EXPECT_GE(ok, 30) << "too many refusals: " << refused;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSpec, ::testing::Range(1u, 41u));

// Nested-concurrency property sweep: random request/acknowledge trees
// (fork-join structure several levels deep). These are conflict-free by
// construction, so synthesis must succeed without insertion and every
// theorem check applies.
class RandomTree : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomTree, SynthesizesVerifiesAndProjects) {
    const auto net = bench::make_tree(GetParam(), 3);
    const auto g = sg::build_state_graph(net);
    ASSERT_TRUE(sg::is_output_distributive(g));
    synth::SynthOptions opts;
    opts.verify_result = true;
    const auto res = synth::synthesize(g, opts);
    EXPECT_TRUE(res.inserted.empty());
    EXPECT_TRUE(res.verification.ok) << res.verification.describe();
    EXPECT_TRUE(sg::check_projection(res.graph, g).ok);
    // Corollary 1 on a concurrency-heavy graph.
    const sg::RegionAnalysis ra(res.graph);
    EXPECT_TRUE(ra.all_persistent());
}

TEST_P(RandomTree, RegionInvariantsUnderConcurrency) {
    const auto g = sg::build_state_graph(bench::make_tree(GetParam(), 3));
    const sg::RegionAnalysis ra(g);
    for (std::size_t ri = 0; ri < ra.regions().size(); ++ri) {
        const auto& r = ra.region(RegionId(ri));
        EXPECT_TRUE(r.states.any());
        BitVec overlap = r.states & r.quiescent;
        EXPECT_TRUE(overlap.none());
        EXPECT_EQ(r.cfr, r.states | r.quiescent);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTree, ::testing::Range(1u, 13u));

} // namespace
} // namespace si
