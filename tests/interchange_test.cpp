// Equation-netlist interchange (to_equations -> parse_equations
// round-trips) and the parametric specification generators.
#include <gtest/gtest.h>

#include "si/bench_stgs/generators.hpp"
#include "si/bench_stgs/table1.hpp"
#include "si/netlist/parse_eqn.hpp"
#include "si/netlist/print.hpp"
#include "si/sg/analysis.hpp"
#include "si/sg/from_stg.hpp"
#include "si/sg/read_sg.hpp"
#include "si/synth/synthesize.hpp"
#include "si/util/error.hpp"
#include "si/verify/verifier.hpp"

namespace si {
namespace {

sg::StateGraph handshake() {
    return sg::read_sg(R"(
.model hs
.inputs r
.outputs a
.arcs
00 r+ 10
10 a+ 11
11 r- 01
01 a- 00
.initial 00
.end
)");
}

TEST(ParseEqn, AllGateForms) {
    const auto spec = handshake();
    const auto nl = net::parse_equations(R"(
# every supported right-hand side
t  = r r        # AND (degenerate: both fanins the same)
u  = t + r      # OR
n  = (r + t)'   # NOR
w  = r          # wire
i  = r'         # inverter
q  = RS(set: r, reset: r')
a  = C(u, u)
)",
                                         spec);
    EXPECT_EQ(nl.num_gates(), 8u); // input r + 7 defined
    EXPECT_EQ(nl.gate(nl.gate_of_signal(spec.signals().find("a"))).kind,
              net::GateKind::CElement);
    const auto s = nl.stats();
    EXPECT_EQ(s.and_gates, 1u);
    EXPECT_EQ(s.or_gates, 1u);
    EXPECT_EQ(s.nor_gates, 1u);
    EXPECT_EQ(s.wires, 1u);
    EXPECT_EQ(s.inverters, 1u);
    EXPECT_EQ(s.rs_latches, 1u);
    EXPECT_EQ(s.c_elements, 1u);
}

TEST(ParseEqn, ForwardReferencesResolve) {
    const auto spec = handshake();
    const auto nl = net::parse_equations("a = C(t, t)\nt = r\n", spec);
    EXPECT_TRUE(verify::verify_speed_independence(nl, spec).ok);
}

TEST(ParseEqn, Errors) {
    const auto spec = handshake();
    EXPECT_THROW((void)net::parse_equations("a = \n", spec), ParseError);
    EXPECT_THROW((void)net::parse_equations("a r\n", spec), ParseError);       // no '='
    EXPECT_THROW((void)net::parse_equations("a = zz\n", spec), ParseError);    // unknown ref
    EXPECT_THROW((void)net::parse_equations("a = r\na = r\n", spec), ParseError); // duplicate
    EXPECT_THROW((void)net::parse_equations("r = a\n", spec), ParseError);     // drives input
    EXPECT_THROW((void)net::parse_equations("a = C(r)\n", spec), ParseError);  // arity
    EXPECT_THROW((void)net::parse_equations("t = r\n", spec), SpecError);      // a undriven
}

TEST(ParseEqn, RoundTripSynthesizedNetlists) {
    // to_equations -> parse_equations must reproduce a netlist with the
    // same gate census that verifies exactly like the original, for
    // every Table-1 benchmark in both architectures.
    for (const auto& entry : bench::table1_suite()) {
        const auto graph = sg::build_state_graph(bench::load(entry));
        for (const bool rs : {false, true}) {
            synth::SynthOptions opts;
            opts.build.use_rs_latches = rs;
            const auto res = synth::synthesize(graph, opts);
            const std::string eq = net::to_equations(res.netlist);
            const auto parsed = net::parse_equations(eq, res.graph);
            const auto s1 = res.netlist.stats();
            const auto s2 = parsed.stats();
            EXPECT_EQ(s1.and_gates, s2.and_gates) << entry.name;
            EXPECT_EQ(s1.or_gates, s2.or_gates) << entry.name;
            EXPECT_EQ(s1.c_elements, s2.c_elements) << entry.name;
            EXPECT_EQ(s1.rs_latches, s2.rs_latches) << entry.name;
            EXPECT_EQ(s1.literals, s2.literals) << entry.name;
            const auto v = verify::verify_speed_independence(parsed, res.graph);
            EXPECT_TRUE(v.ok) << entry.name << ": " << v.describe();
        }
    }
}

class PipelineSweep : public ::testing::TestWithParam<int> {};

TEST_P(PipelineSweep, SynthesizesWithoutInsertionAndVerifies) {
    const auto g = sg::build_state_graph(bench::make_pipeline(GetParam()));
    EXPECT_EQ(g.num_states(), 2u * (static_cast<std::size_t>(GetParam()) + 1));
    synth::SynthOptions opts;
    opts.verify_result = true;
    const auto res = synth::synthesize(g, opts);
    EXPECT_TRUE(res.inserted.empty());
    EXPECT_TRUE(res.verification.ok);
}
INSTANTIATE_TEST_SUITE_P(Sizes, PipelineSweep, ::testing::Values(1, 2, 4, 8, 16));

class ForkJoinSweep : public ::testing::TestWithParam<int> {};

TEST_P(ForkJoinSweep, ConcurrencyIsCleanAndVerifies) {
    const auto g = sg::build_state_graph(bench::make_fork_join(GetParam()));
    EXPECT_TRUE(sg::is_output_distributive(g));
    EXPECT_TRUE(sg::has_unique_state_coding(g));
    synth::SynthOptions opts;
    opts.verify_result = true;
    const auto res = synth::synthesize(g, opts);
    EXPECT_TRUE(res.inserted.empty());
    EXPECT_TRUE(res.verification.ok);
}
INSTANTIATE_TEST_SUITE_P(Sizes, ForkJoinSweep, ::testing::Values(1, 2, 3, 5, 7));

class SequencerSweep : public ::testing::TestWithParam<int> {};

TEST_P(SequencerSweep, NeedsStateSignalsAndVerifies) {
    // Every way after the first reuses the input's code with a different
    // output excited, so the flow must insert state signals.
    const auto g = sg::build_state_graph(bench::make_sequencer(GetParam()));
    EXPECT_FALSE(sg::find_csc_violations(g).empty());
    synth::SynthOptions opts;
    opts.verify_result = true;
    const auto res = synth::synthesize(g, opts);
    EXPECT_GE(res.inserted.size(), 1u);
    EXPECT_TRUE(res.verification.ok) << res.verification.describe();
}
INSTANTIATE_TEST_SUITE_P(Sizes, SequencerSweep, ::testing::Values(2, 3, 4));

class RingSweep : public ::testing::TestWithParam<int> {};

TEST_P(RingSweep, MixedSequentialConcurrentVerifies) {
    const auto g = sg::build_state_graph(bench::make_ring(GetParam()));
    synth::SynthOptions opts;
    opts.verify_result = true;
    const auto res = synth::synthesize(g, opts);
    EXPECT_TRUE(res.verification.ok) << res.verification.describe();
}
INSTANTIATE_TEST_SUITE_P(Sizes, RingSweep, ::testing::Values(1, 2, 3, 4));

} // namespace
} // namespace si
