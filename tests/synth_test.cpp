// End-to-end synthesis-driver tests: MC-clean specs synthesize directly,
// violating specs get repaired, options are honoured, bad inputs are
// rejected with the right errors.
#include <gtest/gtest.h>

#include "si/bench_stgs/figures.hpp"
#include "si/netlist/print.hpp"
#include "si/sg/analysis.hpp"
#include "si/sg/read_sg.hpp"
#include "si/synth/synthesize.hpp"
#include "si/util/error.hpp"

namespace si::synth {
namespace {

sg::StateGraph handshake() {
    return sg::read_sg(R"(
.model hs
.inputs r
.outputs a
.arcs
00 r+ 10
10 a+ 11
11 r- 01
01 a- 00
.initial 00
.end
)");
}

TEST(Synthesize, HandshakeNeedsNoInsertion) {
    SynthOptions opts;
    opts.verify_result = true;
    const auto res = synthesize(handshake(), opts);
    EXPECT_TRUE(res.inserted.empty());
    EXPECT_TRUE(res.mc.satisfied());
    EXPECT_TRUE(res.verification.ok);
    // Both halves degenerate to single literals: a = C(r, r').
    EXPECT_EQ(res.netlist.stats().and_gates, 0u);
    EXPECT_EQ(res.netlist.stats().c_elements, 1u);
    EXPECT_FALSE(res.summary().empty());
}

TEST(Synthesize, Figure1InsertsExactlyOneSignal) {
    SynthOptions opts;
    opts.verify_result = true;
    const auto res = synthesize(bench::figure1(), opts);
    EXPECT_EQ(res.inserted.size(), 1u);      // the paper's Example 1 result
    EXPECT_TRUE(res.mc.satisfied());
    EXPECT_TRUE(res.verification.ok);
    // The inserted signal is internal and invisible at the interface.
    EXPECT_EQ(res.graph.signals().count(SignalKind::Input), 2u);
    EXPECT_EQ(res.graph.signals().count(SignalKind::Output), 2u);
    EXPECT_EQ(res.graph.signals().count(SignalKind::Internal), 1u);
}

TEST(Synthesize, Figure4InsertsExactlyOneSignal) {
    SynthOptions opts;
    opts.verify_result = true;
    const auto res = synthesize(bench::figure4(), opts);
    EXPECT_EQ(res.inserted.size(), 1u);      // the paper's Example 2 repair
    EXPECT_TRUE(res.verification.ok);
}

TEST(Synthesize, Figure3AlreadySatisfiesMc) {
    SynthOptions opts;
    opts.verify_result = true;
    const auto res = synthesize(bench::figure3(), opts);
    EXPECT_TRUE(res.inserted.empty());       // MC reduction already applied
    EXPECT_TRUE(res.verification.ok);
    // d's excitation function degenerates to the x' wire: both +d
    // regions share one cube (the paper's d = x').
    bool shared = false;
    for (const auto& n : res.networks) {
        if (res.graph.signals()[n.signal].name != "d") continue;
        EXPECT_EQ(n.up_cubes.size(), 1u);
        EXPECT_EQ(n.up_cubes[0].literal_count(), 1u);
        shared = true;
    }
    EXPECT_TRUE(shared);
}

TEST(Synthesize, RsArchitecture) {
    SynthOptions opts;
    opts.build.use_rs_latches = true;
    opts.verify_result = true;
    const auto res = synthesize(bench::figure1(), opts);
    EXPECT_TRUE(res.verification.ok);
    EXPECT_EQ(res.netlist.stats().c_elements, 0u);
    EXPECT_EQ(res.netlist.stats().rs_latches, 3u); // c, d and the inserted signal
}

TEST(Synthesize, SharingReducesGateCount) {
    SynthOptions plain;
    plain.verify_result = true;
    const auto res1 = synthesize(bench::figure1(), plain);
    SynthOptions shared = plain;
    shared.enable_sharing = true;
    const auto res2 = synthesize(bench::figure1(), shared);
    EXPECT_TRUE(res2.verification.ok);
    EXPECT_LE(res2.netlist.stats().literals, res1.netlist.stats().literals);
    EXPECT_GT(res2.sharing.merges, 0u);
    EXPECT_LT(res2.sharing.cubes_after, res2.sharing.cubes_before);
}

TEST(Synthesize, NonOutputSemimodularRejected) {
    // Internal conflict: firing a disables output y.
    const auto g = sg::read_sg(R"(
.model clash
.inputs a
.outputs y
.arcs
00 a+ 10
00 y+ 01
01 a+ 11
10 a- 00
11 y- 10
.initial 00
.end
)");
    EXPECT_THROW((void)synthesize(g), SpecError);
}

TEST(Synthesize, InsertionBudgetHonoured) {
    SynthOptions opts;
    opts.max_inserted_signals = 0;
    EXPECT_THROW((void)synthesize(bench::figure1(), opts), SynthesisError);
}

TEST(Synthesize, InsertedPrefixUsed) {
    SynthOptions opts;
    opts.inserted_prefix = "map";
    const auto res = synthesize(bench::figure1(), opts);
    ASSERT_EQ(res.inserted.size(), 1u);
    EXPECT_EQ(res.inserted[0], "map0");
    EXPECT_TRUE(res.graph.signals().find("map0").is_valid());
}

TEST(Synthesize, EquationsPrintable) {
    const auto res = synthesize(bench::figure1());
    const std::string eq = net::to_equations(res.netlist);
    EXPECT_NE(eq.find("= C("), std::string::npos);
    EXPECT_NE(eq.find("csc0"), std::string::npos);
}

TEST(Synthesize, ResultGraphConsistent) {
    const auto res = synthesize(bench::figure4());
    EXPECT_FALSE(sg::check_well_formed(res.graph).has_value());
    EXPECT_TRUE(sg::is_output_semimodular(res.graph));
    EXPECT_TRUE(sg::find_csc_violations(res.graph).empty()); // Thm 4
}

} // namespace
} // namespace si::synth
