// Petri-net structural classification and the unit-delay cycle-time
// estimator.
#include <gtest/gtest.h>

#include "si/bench_stgs/figures.hpp"
#include "si/bench_stgs/generators.hpp"
#include "si/bench_stgs/table1.hpp"
#include "si/sg/from_stg.hpp"
#include "si/stg/parse.hpp"
#include "si/stg/structure.hpp"
#include "si/synth/complex_gate.hpp"
#include "si/synth/synthesize.hpp"
#include "si/util/error.hpp"
#include "si/verify/performance.hpp"

namespace si {
namespace {

TEST(Structure, SequentialCycleIsMarkedGraphSafeLive) {
    const auto net = bench::load(bench::table1_suite().back()); // Delement
    const auto report = stg::analyze_structure(net);
    EXPECT_TRUE(report.marked_graph);
    EXPECT_TRUE(report.free_choice);
    EXPECT_TRUE(report.safe);
    EXPECT_TRUE(report.live);
    EXPECT_EQ(report.reachable_markings, 8u);
    EXPECT_FALSE(report.describe().empty());
}

TEST(Structure, WholeTable1IsWellFormed) {
    for (const auto& e : bench::table1_suite()) {
        const auto report = stg::analyze_structure(bench::load(e));
        EXPECT_TRUE(report.safe) << e.name;
        EXPECT_TRUE(report.live) << e.name << ": " << report.offender;
    }
}

TEST(Structure, ChoicePlaceClassification) {
    const auto net = stg::read_g(R"(
.model choice
.inputs a b
.outputs y
.graph
p0 a+ b+
a+ pm
b+ pm
pm y+
y+ p1
p1 y-
y- p0
.marking { p0 }
.end
)");
    const auto report = stg::analyze_structure(net);
    EXPECT_FALSE(report.marked_graph); // p0 has two consumers, pm two producers
    EXPECT_TRUE(report.free_choice);   // both consumers of p0 read only p0
    EXPECT_TRUE(report.safe);
    // y toggles regardless of branch: the net is live (strongly
    // connected, all transitions fire).
    EXPECT_TRUE(report.live);
}

TEST(Structure, NonFreeChoiceDetected) {
    // t2 consumes the shared choice place plus a private one.
    const auto net = stg::read_g(R"(
.model nfc
.inputs a b
.outputs y
.graph
p0 a+ b+
pp b+
a+ y+
b+ y+
y+ p1
p1 y-
y- p0
y- pp
.marking { p0 pp }
.end
)");
    const auto report = stg::analyze_structure(net);
    EXPECT_FALSE(report.free_choice);
}

TEST(Structure, UnsafeNetFlagged) {
    const auto net = stg::read_g(R"(
.model unsafe
.inputs a
.outputs y
.graph
p a+
a+ y+
y+ p
a+ q
q y-
y- a-
a- p2
p2 a+
.marking { p=2 p2 }
.end
)");
    const auto report = stg::analyze_structure(net);
    EXPECT_FALSE(report.safe);
    EXPECT_NE(report.offender.find("tokens"), std::string::npos);
}

TEST(Structure, DeadTransitionBreaksLiveness) {
    const auto net = stg::read_g(R"(
.model dead
.inputs a
.outputs y
.graph
p a+
a+ y+
y+ a-
a- y-
y- p
q y+/2
y+/2 q2
q2 y-/2
y-/2 q
.marking { p }
.end
)");
    const auto report = stg::analyze_structure(net);
    EXPECT_FALSE(report.live);
    EXPECT_NE(report.offender.find("never fires"), std::string::npos);
}

TEST(Structure, GeneratorsAreWellFormed) {
    for (const auto& net :
         {bench::make_pipeline(4), bench::make_fork_join(4), bench::make_sequencer(3),
          bench::make_ring(3)}) {
        const auto report = stg::analyze_structure(net);
        EXPECT_TRUE(report.safe) << net.name;
        EXPECT_TRUE(report.live) << net.name << ": " << report.offender;
    }
}

TEST(Performance, HandshakeWireCycle) {
    const auto g = sg::build_state_graph(bench::make_pipeline(1));
    synth::SynthOptions opts;
    const auto res = synth::synthesize(g, opts);
    const auto est = verify::estimate_cycle_time(res.netlist, res.graph);
    ASSERT_TRUE(est.periodic);
    EXPECT_GT(est.period_ticks, 0u);
    EXPECT_GT(est.gate_events, 0u);
    EXPECT_EQ(est.input_events, 2u); // r+ and r- once per cycle
    EXPECT_FALSE(est.describe().empty());
}

TEST(Performance, DeeperPipelinesHaveLongerPeriods) {
    std::size_t last = 0;
    for (const int stages : {1, 2, 4}) {
        const auto g = sg::build_state_graph(bench::make_pipeline(stages));
        const auto res = synth::synthesize(g);
        const auto est = verify::estimate_cycle_time(res.netlist, res.graph);
        ASSERT_TRUE(est.periodic);
        EXPECT_GT(est.period_ticks, last);
        last = est.period_ticks;
    }
}

TEST(Performance, ComplexGatesNotSlowerThanBasic) {
    // One atomic gate per signal switches in one unit; the basic-gate
    // network pays the AND/OR/latch chain.
    const auto g = bench::figure1();
    const auto basic = synth::synthesize(g);
    const auto basic_est = verify::estimate_cycle_time(basic.netlist, basic.graph);
    const sg::RegionAnalysis ra(g);
    const auto complex_nl = synth::build_complex_gate_implementation(ra);
    const auto complex_est = verify::estimate_cycle_time(complex_nl, g);
    ASSERT_TRUE(basic_est.periodic);
    ASSERT_TRUE(complex_est.periodic);
    EXPECT_LE(complex_est.period_ticks, basic_est.period_ticks);
}

TEST(Performance, DeadlockedNetlistReported) {
    const auto g = sg::build_state_graph(bench::make_pipeline(1));
    net::Netlist nl(g.signals());
    const GateId in = nl.add_gate(net::GateKind::Input, "r", {}, g.signals().find("r"));
    const GateId dead = nl.add_gate(net::GateKind::And, "z", {{in, false}, {in, true}});
    nl.add_gate(net::GateKind::Wire, "s0", {{dead, false}}, g.signals().find("s0"));
    const auto est = verify::estimate_cycle_time(nl, g);
    EXPECT_FALSE(est.periodic);
}

} // namespace
} // namespace si
