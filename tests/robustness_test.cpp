// Robustness: the parsers must reject malformed input with a ParseError
// or SpecError — never crash, never loop — across adversarial and
// pseudo-random inputs; graceful degradation under tiny resource
// budgets (Exhausted outcomes, never crashes or false verdicts); and
// .g round-trip idempotence over the embedded benchmark STGs.
#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <random>
#include <string>

#include "si/bench_stgs/figures.hpp"
#include "si/bench_stgs/table1.hpp"
#include "si/boolean/minimize.hpp"
#include "si/mc/requirement.hpp"
#include "si/netlist/parse_eqn.hpp"
#include "si/sg/from_stg.hpp"
#include "si/sg/read_sg.hpp"
#include "si/sg/regions.hpp"
#include "si/stg/parse.hpp"
#include "si/synth/synthesize.hpp"
#include "si/util/budget.hpp"
#include "si/util/error.hpp"
#include "si/verify/verifier.hpp"

namespace si {
namespace {

// Feed text to a parser; success or a library Error are fine, anything
// else is a bug.
template <class Fn>
void must_not_crash(const Fn& fn, const std::string& text) {
    try {
        fn(text);
    } catch (const Error&) {
        // expected rejection path
    }
}

std::string random_text(std::mt19937& rng, std::size_t len, bool structured) {
    static const char* tokens[] = {".model", ".inputs", ".outputs", ".graph", ".marking",
                                   ".end",   ".initial", ".arcs",   "a+",     "b-",
                                   "a",      "p0",       "{",       "}",      "<a+,b->",
                                   "=",      "+",        "0101",    "/2",     "#x"};
    std::string out;
    for (std::size_t i = 0; i < len; ++i) {
        if (structured) {
            out += tokens[rng() % (sizeof(tokens) / sizeof(tokens[0]))];
            out += (rng() % 4 == 0) ? "\n" : " ";
        } else {
            out += static_cast<char>(rng() % 96 + 32);
            if (rng() % 20 == 0) out += '\n';
        }
    }
    return out;
}

class ParserFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParserFuzz, GParserNeverCrashes) {
    std::mt19937 rng(GetParam());
    for (int round = 0; round < 50; ++round) {
        const bool structured = round % 2 == 0;
        const auto text = random_text(rng, 20 + rng() % 200, structured);
        must_not_crash([](const std::string& t) { (void)stg::read_g(t); }, text);
    }
}

TEST_P(ParserFuzz, SgParserNeverCrashes) {
    std::mt19937 rng(GetParam() + 1000);
    for (int round = 0; round < 50; ++round) {
        const auto text = random_text(rng, 20 + rng() % 200, round % 2 == 0);
        must_not_crash([](const std::string& t) { (void)sg::read_sg(t); }, text);
    }
}

TEST_P(ParserFuzz, EquationParserNeverCrashes) {
    std::mt19937 rng(GetParam() + 2000);
    const auto spec = bench::figure1();
    for (int round = 0; round < 50; ++round) {
        const auto text = random_text(rng, 10 + rng() % 120, round % 2 == 0);
        must_not_crash([&](const std::string& t) { (void)net::parse_equations(t, spec); }, text);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(0u, 8u));

TEST(Robustness, TruncatedRealFiles) {
    // Every prefix of a real .g file must be rejected cleanly or parse.
    const std::string good = R"(.model hs
.inputs r
.outputs a
.graph
r+ a+
a+ r-
r- a-
a- r+
.marking { <a-,r+> }
.end
)";
    for (std::size_t cut = 0; cut < good.size(); cut += 3)
        must_not_crash([](const std::string& t) { (void)stg::read_g(t); }, good.substr(0, cut));
}

TEST(Robustness, DescribeWithTraceOnViolations) {
    const auto g = bench::figure1();
    const sg::RegionAnalysis ra(g);
    const auto report = mc::check_requirement(ra);
    bool saw_trace = false;
    for (const auto& r : report.regions) {
        for (const auto& v : r.violations) {
            const std::string text = v.describe_with_trace(ra);
            EXPECT_NE(text.find("reached by"), std::string::npos);
            saw_trace = true;
        }
    }
    EXPECT_TRUE(saw_trace);
}

TEST(Robustness, GParserRejectsBadTokenCounts) {
    must_not_crash([](const std::string& t) { (void)stg::read_g(t); },
                   ".model x\n.inputs a\n.graph\na+ p\np a-\na- a+\n.marking { p=999 }\n.end\n");
    EXPECT_THROW(
        (void)stg::read_g(".model x\n.inputs a\n.graph\na+ p\np a-\na- a+\n.marking { p=-1 }\n.end\n"),
        Error);
}

// ---------------------------------------------------------------------------
// Resource governance: budgets trip accurately, stick, and surface as
// Exhausted outcomes — never as crashes or definitive false verdicts.

TEST(Budget, CapTripsAtTheLimitAndSticks) {
    util::Budget b;
    b.cap(util::Resource::States, 3);
    EXPECT_TRUE(b.charge(util::Resource::States));
    EXPECT_TRUE(b.charge(util::Resource::States));
    EXPECT_TRUE(b.charge(util::Resource::States));
    EXPECT_FALSE(b.charge(util::Resource::States)); // 4th exceeds the cap
    ASSERT_TRUE(b.exhausted());
    const auto& why = *b.failure();
    EXPECT_EQ(why.resource, util::Resource::States);
    EXPECT_EQ(why.consumed, 4u);
    EXPECT_EQ(why.limit, 3u);
    // Sticky: every later charge fails, whatever the resource.
    EXPECT_FALSE(b.charge(util::Resource::Steps));
    EXPECT_FALSE(b.checkpoint());
}

TEST(Budget, DeadlineTripsAtACheckpoint) {
    util::Budget b;
    b.deadline(std::chrono::milliseconds(0));
    EXPECT_FALSE(b.checkpoint());
    ASSERT_TRUE(b.exhausted());
    EXPECT_EQ(b.failure()->resource, util::Resource::WallClock);
}

TEST(Budget, StageScopesNameTheTripSite) {
    util::Budget b;
    b.cap(util::Resource::Steps, 0);
    {
        const auto outer = b.stage("outer");
        const auto inner = b.stage("inner");
        EXPECT_EQ(b.current_stage(), "outer/inner");
        EXPECT_FALSE(b.charge(util::Resource::Steps));
    }
    ASSERT_TRUE(b.exhausted());
    EXPECT_EQ(b.failure()->stage, "outer/inner");
    // The recorded stage survives scope exit.
    EXPECT_EQ(b.current_stage(), "");
    EXPECT_EQ(b.failure()->stage, "outer/inner");
}

TEST(Governance, FromStgExhaustsGracefully) {
    const auto stg = bench::load(bench::table1_suite().front());
    util::Budget b;
    b.cap(util::Resource::States, 2);
    sg::FromStgOptions opts;
    opts.budget = &b;
    const auto outcome = sg::build_state_graph_outcome(stg, opts);
    ASSERT_FALSE(outcome.is_complete());
    EXPECT_EQ(outcome.why().resource, util::Resource::States);
    EXPECT_NE(outcome.why().stage.find("sg.explore"), std::string::npos);
    EXPECT_GE(outcome.why().consumed, outcome.why().limit);
}

TEST(Governance, VerifierReportsUnknownNotHazardous) {
    static const auto res = synth::synthesize(bench::figure1());
    util::Budget b;
    b.cap(util::Resource::States, 2);
    verify::VerifyOptions vo;
    vo.budget = &b;
    const auto r = verify::verify_speed_independence(res.netlist, res.graph, vo);
    EXPECT_FALSE(r.ok);
    ASSERT_FALSE(r.complete());
    EXPECT_NE(r.exhaustion->stage.find("verify.explore"), std::string::npos);
    EXPECT_NE(r.describe().find("UNKNOWN"), std::string::npos);
}

TEST(Governance, SynthesizeOutcomeExhaustsWithoutThrowing) {
    // Acceptance check: a tiny budget on the duplicator yields Exhausted
    // naming the stage and resource — no exception, no bogus result.
    std::optional<stg::Stg> duplicator;
    for (const auto& entry : bench::table1_suite())
        if (std::string(entry.name) == "duplicator") duplicator.emplace(bench::load(entry));
    ASSERT_TRUE(duplicator.has_value());
    const auto graph = sg::build_state_graph(*duplicator);

    util::Budget b;
    b.cap(util::Resource::Steps, 1);
    const auto outcome = synth::synthesize_outcome(graph, {}, &b);
    ASSERT_FALSE(outcome.is_complete());
    EXPECT_NE(outcome.why().stage.find("synth"), std::string::npos);
    EXPECT_EQ(outcome.why().resource, util::Resource::Steps);
    EXPECT_GT(outcome.why().consumed, 0u);
    // The legacy wrapper converts the same exhaustion (here via the
    // module-local search-node cap) into a SynthesisError.
    synth::SynthOptions so;
    so.max_search_nodes = 1;
    EXPECT_THROW((void)synth::synthesize(graph, so), Error);
}

TEST(Governance, MinimizeDegradesToAValidCover) {
    Cover f(2);
    f.add(Cube::from_string("00"));
    f.add(Cube::from_string("10"));
    util::Budget b;
    b.cap(util::Resource::Steps, 0); // exhausted on the first sweep
    MinimizeOptions opts;
    opts.budget = &b;
    const Cover g = minimize(f, Cover(2), opts);
    EXPECT_TRUE(g.covers(f)); // still a cover of the onset...
    EXPECT_FALSE(g.covers_cube(Cube::from_string("01"))); // ...and no offset point
    EXPECT_FALSE(g.covers_cube(Cube::from_string("11")));
    EXPECT_TRUE(b.exhausted());
}

// ---------------------------------------------------------------------------
// .g round-trips: write_g(read_g(text)) is a fixed point, and the
// reparsed net generates the same state graph.

TEST(RoundTrip, GWriterIsIdempotentOnTable1) {
    for (const auto& entry : bench::table1_suite()) {
        const auto s1 = stg::read_g(entry.g_text);
        const auto t1 = stg::write_g(s1);
        const auto s2 = stg::read_g(t1);
        const auto t2 = stg::write_g(s2);
        EXPECT_EQ(t1, t2) << entry.name << ": write_g not idempotent";
        const auto g1 = sg::build_state_graph(s1);
        const auto g2 = sg::build_state_graph(s2);
        EXPECT_EQ(g1.num_states(), g2.num_states()) << entry.name;
        EXPECT_EQ(g1.num_arcs(), g2.num_arcs()) << entry.name;
    }
}

} // namespace
} // namespace si
