// Robustness: the parsers must reject malformed input with a ParseError
// or SpecError — never crash, never loop — across adversarial and
// pseudo-random inputs; plus assorted edge-case coverage.
#include <gtest/gtest.h>

#include <random>

#include "si/bench_stgs/figures.hpp"
#include "si/mc/requirement.hpp"
#include "si/netlist/parse_eqn.hpp"
#include "si/sg/read_sg.hpp"
#include "si/sg/regions.hpp"
#include "si/stg/parse.hpp"
#include "si/util/error.hpp"

namespace si {
namespace {

// Feed text to a parser; success or a library Error are fine, anything
// else is a bug.
template <class Fn>
void must_not_crash(const Fn& fn, const std::string& text) {
    try {
        fn(text);
    } catch (const Error&) {
        // expected rejection path
    }
}

std::string random_text(std::mt19937& rng, std::size_t len, bool structured) {
    static const char* tokens[] = {".model", ".inputs", ".outputs", ".graph", ".marking",
                                   ".end",   ".initial", ".arcs",   "a+",     "b-",
                                   "a",      "p0",       "{",       "}",      "<a+,b->",
                                   "=",      "+",        "0101",    "/2",     "#x"};
    std::string out;
    for (std::size_t i = 0; i < len; ++i) {
        if (structured) {
            out += tokens[rng() % (sizeof(tokens) / sizeof(tokens[0]))];
            out += (rng() % 4 == 0) ? "\n" : " ";
        } else {
            out += static_cast<char>(rng() % 96 + 32);
            if (rng() % 20 == 0) out += '\n';
        }
    }
    return out;
}

class ParserFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParserFuzz, GParserNeverCrashes) {
    std::mt19937 rng(GetParam());
    for (int round = 0; round < 50; ++round) {
        const bool structured = round % 2 == 0;
        const auto text = random_text(rng, 20 + rng() % 200, structured);
        must_not_crash([](const std::string& t) { (void)stg::read_g(t); }, text);
    }
}

TEST_P(ParserFuzz, SgParserNeverCrashes) {
    std::mt19937 rng(GetParam() + 1000);
    for (int round = 0; round < 50; ++round) {
        const auto text = random_text(rng, 20 + rng() % 200, round % 2 == 0);
        must_not_crash([](const std::string& t) { (void)sg::read_sg(t); }, text);
    }
}

TEST_P(ParserFuzz, EquationParserNeverCrashes) {
    std::mt19937 rng(GetParam() + 2000);
    const auto spec = bench::figure1();
    for (int round = 0; round < 50; ++round) {
        const auto text = random_text(rng, 10 + rng() % 120, round % 2 == 0);
        must_not_crash([&](const std::string& t) { (void)net::parse_equations(t, spec); }, text);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(0u, 8u));

TEST(Robustness, TruncatedRealFiles) {
    // Every prefix of a real .g file must be rejected cleanly or parse.
    const std::string good = R"(.model hs
.inputs r
.outputs a
.graph
r+ a+
a+ r-
r- a-
a- r+
.marking { <a-,r+> }
.end
)";
    for (std::size_t cut = 0; cut < good.size(); cut += 3)
        must_not_crash([](const std::string& t) { (void)stg::read_g(t); }, good.substr(0, cut));
}

TEST(Robustness, DescribeWithTraceOnViolations) {
    const auto g = bench::figure1();
    const sg::RegionAnalysis ra(g);
    const auto report = mc::check_requirement(ra);
    bool saw_trace = false;
    for (const auto& r : report.regions) {
        for (const auto& v : r.violations) {
            const std::string text = v.describe_with_trace(ra);
            EXPECT_NE(text.find("reached by"), std::string::npos);
            saw_trace = true;
        }
    }
    EXPECT_TRUE(saw_trace);
}

TEST(Robustness, GParserRejectsBadTokenCounts) {
    must_not_crash([](const std::string& t) { (void)stg::read_g(t); },
                   ".model x\n.inputs a\n.graph\na+ p\np a-\na- a+\n.marking { p=999 }\n.end\n");
    EXPECT_THROW(
        (void)stg::read_g(".model x\n.inputs a\n.graph\na+ p\np a-\na- a+\n.marking { p=-1 }\n.end\n"),
        Error);
}

} // namespace
} // namespace si
