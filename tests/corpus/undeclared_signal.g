.model m
.inputs a
.outputs b
.graph
a+ z+
.marking {<a+,z+>}
.end
