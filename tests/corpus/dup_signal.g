.model m
.inputs a
.outputs a
.graph
a+ a-
.marking {<a+,a->}
.end
