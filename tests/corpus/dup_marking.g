.model m
.inputs a
.outputs b
.graph
a+ b+
.marking {<a+,b+> <a+,b+>}
.end
