.model m
.inputs a
.outputs b
.graph
a+/0 b+/0
.marking {<a+/0,b+/0>}
.end
