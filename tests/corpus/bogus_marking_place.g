.model m
.inputs a
.outputs b
.graph
a+ b+
.marking {<b+,a+>}
.end
