.model m
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
.end
.graph
