.model m
.graph
.end
