.model trunc
.inputs a b
.outputs c
.graph
a+ c+
