.model m
.inputs a
.outputs b
.graph
a+ b+/99999999999999999999
.marking {<a+,b+>}
.end
