.model m
.inputs a
.outputs b
.marking {<a+,b+>}
.graph
a+ b+
.end
