.unknown directive
.model m
.graph
.end
