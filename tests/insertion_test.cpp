// State-signal insertion machinery: labelings, expansion, offending-state
// computation and the SAT-driven repair.
#include <gtest/gtest.h>

#include "si/bench_stgs/figures.hpp"
#include "si/mc/requirement.hpp"
#include "si/sg/analysis.hpp"
#include "si/sg/read_sg.hpp"
#include "si/synth/insertion.hpp"
#include "si/synth/labeling.hpp"
#include "si/util/error.hpp"

namespace si::synth {
namespace {

sg::StateGraph delement_like() {
    // r+ q+ r- q-  cycle with a repeated code: after r+ the code 10 and
    // after r- the code ... build the classic conflict:
    // r1+ r2+ a2+ r2- a2- a1+ r1- a1- with duplicate code 1000.
    return sg::read_sg(R"(
.model hs
.inputs r
.outputs a
.arcs
00 r+ 10
10 a+ 11
11 r- 01
01 a- 00
.initial 00
.end
)");
}

TEST(Labeling, NextStateRelation) {
    EXPECT_TRUE(labels_compatible(XLabel::Zero, XLabel::Zero));
    EXPECT_TRUE(labels_compatible(XLabel::Zero, XLabel::Rise));
    EXPECT_FALSE(labels_compatible(XLabel::Zero, XLabel::One));
    EXPECT_TRUE(labels_compatible(XLabel::Zero, XLabel::Fall)); // lands post-x- slice
    EXPECT_TRUE(labels_compatible(XLabel::Rise, XLabel::One));
    EXPECT_FALSE(labels_compatible(XLabel::Rise, XLabel::Zero));
    EXPECT_FALSE(labels_compatible(XLabel::Rise, XLabel::Fall)); // would strand the pending x+
    EXPECT_TRUE(labels_compatible(XLabel::One, XLabel::Fall));
    EXPECT_TRUE(labels_compatible(XLabel::One, XLabel::Rise)); // lands post-x+ slice
    EXPECT_TRUE(labels_compatible(XLabel::Fall, XLabel::Zero));
    EXPECT_FALSE(labels_compatible(XLabel::Fall, XLabel::Rise));
    EXPECT_FALSE(label_value(XLabel::Zero));
    EXPECT_TRUE(label_value(XLabel::One));
    EXPECT_FALSE(label_value(XLabel::Rise));
    EXPECT_TRUE(label_value(XLabel::Fall));
}

TEST(Labeling, ExpansionSplitsRiseAndFall) {
    const auto g = delement_like();
    // r+ happens with x rising, r- with x falling: states 00->Rise? The
    // cycle 00,10,11,01 gets labels Rise, One, Fall, Zero.
    const std::vector<XLabel> labels{XLabel::Rise, XLabel::One, XLabel::Fall, XLabel::Zero};
    const auto expanded = expand_with_signal(g, labels, "x");
    // 00 and 11 split in two; 10 and 01 stay single: 6 states.
    EXPECT_EQ(expanded.num_states(), 6u);
    EXPECT_EQ(expanded.num_signals(), 3u);
    EXPECT_EQ(expanded.signals()[SignalId(2)].name, "x");
    EXPECT_EQ(expanded.signals()[SignalId(2)].kind, SignalKind::Internal);
    ASSERT_FALSE(sg::check_well_formed(expanded).has_value());
    // Initial state keeps x at its pre-transition value 0 (Rise).
    EXPECT_FALSE(expanded.value(expanded.initial(), SignalId(2)));
    // Every original behaviour survives: reachable count equals total.
    EXPECT_EQ(expanded.reachable().count(), expanded.num_states());
}

TEST(Labeling, IllegalLabelingRejected) {
    const auto g = delement_like();
    // Zero -> One across an arc violates the next-state relation.
    const std::vector<XLabel> labels{XLabel::Zero, XLabel::One, XLabel::One, XLabel::Zero};
    EXPECT_THROW((void)expand_with_signal(g, labels, "x"), SpecError);
}

TEST(Labeling, LabelTableSizeChecked) {
    const auto g = delement_like();
    EXPECT_THROW((void)expand_with_signal(g, {XLabel::Zero}, "x"), InternalError);
}

TEST(Offending, Figure1PlusD) {
    const auto g = bench::figure1();
    const sg::RegionAnalysis ra(g);
    // Find ER(+d,1).
    RegionId dp1 = RegionId::invalid();
    for (std::size_t i = 0; i < ra.regions().size(); ++i) {
        const auto& r = ra.region(RegionId(i));
        if (g.signals()[r.signal].name == "d" && r.rising && r.instance == 1) dp1 = RegionId(i);
    }
    ASSERT_TRUE(dp1.is_valid());
    const auto off = offending_states(ra, dp1);
    ASSERT_FALSE(off.empty());
    // The initial state 0*0*00 is covered by cube b' but lies outside
    // CFR(+d,1): it must be an offender.
    bool initial_offends = false;
    for (const auto s : off) initial_offends = initial_offends || s == g.initial();
    EXPECT_TRUE(initial_offends);
}

TEST(Insertion, RepairsFigure1WithOneSignal) {
    const auto g = bench::figure1();
    const sg::RegionAnalysis ra(g);
    std::vector<RegionId> victims;
    const auto report = mc::check_requirement(ra);
    for (const auto& r : report.regions)
        if (!r.ok()) victims.push_back(r.region);
    ASSERT_FALSE(victims.empty());

    const auto outcome = insert_signal_for(ra, victims, "x");
    ASSERT_TRUE(outcome.has_value());
    EXPECT_EQ(outcome->signal_name, "x");
    EXPECT_EQ(outcome->labels.size(), g.num_states());

    // The expanded graph satisfies the MC requirement outright (the
    // paper's single-signal reduction).
    const sg::RegionAnalysis ra2(outcome->graph);
    EXPECT_TRUE(mc::check_requirement(ra2).satisfied());
    EXPECT_TRUE(sg::is_output_semimodular(outcome->graph));
    // Inputs keep their interface: same number of input signals.
    EXPECT_EQ(outcome->graph.signals().count(SignalKind::Input), 2u);
}

TEST(Insertion, EmptyVictimListIsNoop) {
    const auto g = bench::figure1();
    const sg::RegionAnalysis ra(g);
    EXPECT_FALSE(insert_signal_for(ra, {}, "x").has_value());
}

TEST(Insertion, HealthyRegionYieldsNothing) {
    // A region that already has an MC cube has no offenders to separate.
    const auto g = delement_like();
    const sg::RegionAnalysis ra(g);
    const std::vector<RegionId> victims{RegionId(0)};
    EXPECT_FALSE(insert_signal_for(ra, victims, "x").has_value());
}

TEST(Insertion, InputsNeverDelayed) {
    // After any accepted insertion, every input arc of the original
    // graph must still be enabled without waiting for the new signal:
    // check that no input transition has the inserted signal as its
    // trigger in the expanded graph.
    const auto g = bench::figure1();
    const sg::RegionAnalysis ra(g);
    std::vector<RegionId> victims;
    for (const auto& r : mc::check_requirement(ra).regions)
        if (!r.ok()) victims.push_back(r.region);
    const auto outcome = insert_signal_for(ra, victims, "x");
    ASSERT_TRUE(outcome.has_value());

    const auto& eg = outcome->graph;
    const SignalId x = eg.signals().find("x");
    const sg::RegionAnalysis era(eg);
    for (const auto& r : era.regions()) {
        if (eg.signals()[r.signal].kind != SignalKind::Input) continue;
        for (const auto& t : r.triggers)
            EXPECT_NE(t.signal, x) << "input " << eg.signals()[r.signal].name
                                   << " is triggered by the inserted signal";
    }
}

} // namespace
} // namespace si::synth
