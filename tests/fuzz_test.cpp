// Differential-fuzzing harness tests: oracle agreement on known-good
// recipes, Unknown on starved budgets, campaign determinism, the
// injected-disagreement shrink/replay loop, hostile .g mutants, and the
// checked-in hostile corpus (every file must parse or be rejected with a
// structured si::Error — never crash, never leak a foreign exception).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "si/bench_stgs/table1.hpp"
#include "si/gen/fuzz.hpp"
#include "si/gen/gen.hpp"
#include "si/stg/parse.hpp"
#include "si/util/error.hpp"

#ifndef SI_CORPUS_DIR
#define SI_CORPUS_DIR "tests/corpus"
#endif

namespace si::gen {
namespace {

CaseOutcome run_recipe(const char* text, const DiffOptions& opts = {}) {
    const auto r = Recipe::parse(text);
    EXPECT_TRUE(r.has_value()) << text;
    return diff_case(build(*r), opts);
}

TEST(DiffCase, OraclesAgreeOnKnownGoodRecipes) {
    // One recipe per block kind, covering both composition modes. All
    // are built from known-SI components, so Theorem 3 must hold: MC
    // synthesis succeeds and the gate-level verifier finds no hazard.
    for (const char* text : {"ser:pipe2", "par:fork3", "ser:ring2", "par:choice2", "par:seq2"}) {
        const CaseOutcome out = run_recipe(text);
        EXPECT_EQ(out.verdict, Verdict::Agree) << text << ": " << out.detail;
        EXPECT_GT(out.sg_states, 0u) << text;
    }
}

TEST(DiffCase, SeqBlocksExerciseInsertion) {
    // Round-robin sequencers violate CSC by construction; the repair
    // loop must insert state signals and the oracles must still agree.
    const CaseOutcome out = run_recipe("par:seq2");
    EXPECT_EQ(out.verdict, Verdict::Agree) << out.detail;
    EXPECT_GT(out.inserted_signals, 0u);
}

TEST(DiffCase, StarvedBudgetYieldsUnknownNotAbort) {
    DiffOptions opts;
    opts.budget_steps = 4;
    opts.budget_states = 4;
    const CaseOutcome out = run_recipe("par:ring3,ring3", opts);
    EXPECT_EQ(out.verdict, Verdict::Unknown) << out.detail;
    EXPECT_FALSE(out.detail.empty());
    EXPECT_FALSE(out.span_path.empty());
}

TEST(MutateG, DeterministicAndDifferent) {
    const std::string base = stg::write_g(generate(3));
    const std::string a = mutate_g(base, 11);
    EXPECT_EQ(a, mutate_g(base, 11));
    EXPECT_NE(a, mutate_g(base, 12));
}

TEST(ParseHostile, MutantsNeverEscapeStructuredErrors) {
    std::size_t rejected = 0;
    for (std::uint64_t seed = 0; seed < 16; ++seed) {
        const std::string base = stg::write_g(generate(seed));
        for (std::uint64_t m = 0; m < 16; ++m) {
            const HostileResult hr = parse_hostile(mutate_g(base, derive_seed(seed, m)));
            EXPECT_TRUE(hr.handled) << hr.error;
            rejected += hr.parsed ? 0 : 1;
        }
    }
    EXPECT_GT(rejected, 0u); // the mutator actually breaks inputs
}

TEST(ParseHostile, CorpusParsesOrRejectsCleanly) {
    const std::filesystem::path dir(SI_CORPUS_DIR);
    ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
    std::size_t files = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() != ".g") continue;
        ++files;
        std::ifstream in(entry.path(), std::ios::binary);
        std::ostringstream text;
        text << in.rdbuf();
        const HostileResult hr = parse_hostile(text.str());
        EXPECT_TRUE(hr.handled) << entry.path() << ": " << hr.error;
    }
    EXPECT_GE(files, 12u) << "hostile corpus went missing from " << dir;
}

TEST(Parser, StructuredErrorsCarryPosition) {
    try {
        (void)stg::read_g(".model m\n.inputs a\n.graph\na+ b+\n.marking {<a+,b+>}\n.end\n");
        FAIL() << "undeclared signal must not parse";
    } catch (const ParseError& e) {
        EXPECT_GT(e.line(), 0u);
        EXPECT_FALSE(e.message().empty());
        EXPECT_NE(std::string(e.what()).find("line"), std::string::npos);
    }
}

TEST(Campaign, DeterministicAndCleanOnDefaults) {
    CampaignOptions opts;
    opts.seed = 42;
    opts.count = 12;
    opts.hostile_per_case = 2;
    const CampaignResult a = run_campaign(opts);
    const CampaignResult b = run_campaign(opts);
    EXPECT_TRUE(a.clean()) << a.describe();
    EXPECT_EQ(a.describe(), b.describe());
    EXPECT_EQ(a.agree + a.disagree + a.unknown + a.errors, a.cases);
    EXPECT_EQ(a.hostile, 24u);
    EXPECT_EQ(a.hostile_unhandled, 0u);
}

TEST(Campaign, InjectedDisagreementShrinksToReplayableOneLiner) {
    CampaignOptions opts;
    opts.seed = 7;
    opts.count = 24;
    opts.hostile_per_case = 0;
    opts.inject_disagree = [](const Recipe& r) {
        for (const auto& b : r.blocks)
            if (b.kind == BlockKind::Fork && b.param >= 2) return true;
        return false;
    };
    const CampaignResult result = run_campaign(opts);
    ASSERT_GT(result.disagree, 0u);
    ASSERT_FALSE(result.failures.empty());
    for (const auto& rec : result.failures) {
        EXPECT_EQ(rec.shrunk.to_string(), "par:fork2") << rec.one_liner();
        const ReplayOutcome replay = replay_one_liner(rec.one_liner(), opts);
        EXPECT_TRUE(replay.ok) << replay.error;
        EXPECT_TRUE(replay.reproduced) << rec.one_liner();
    }
    // Without the injection hook the same one-liners must NOT reproduce:
    // the finding lives in the hook, not the pipeline.
    CampaignOptions plain = opts;
    plain.inject_disagree = nullptr;
    const ReplayOutcome replay = replay_one_liner(result.failures[0].one_liner(), plain);
    EXPECT_TRUE(replay.ok) << replay.error;
    EXPECT_FALSE(replay.reproduced);
}

TEST(Replay, RejectsMalformedOneLiners) {
    for (const char* line : {"", "recipe", "seed=1", "recipe=par:gate9", "seed=xx recipe=par:pipe1",
                             "seed=1 recipe=par:pipe1 hostile=", "what=ever recipe=par:pipe1",
                             "recipe=par:pipe1 hostile=3"}) {
        const ReplayOutcome out = replay_one_liner(line);
        EXPECT_FALSE(out.ok) << line;
        EXPECT_FALSE(out.error.empty()) << line;
    }
}

TEST(Replay, HostileOneLinerRegeneratesSameMutant) {
    // A parser one-liner replays the exact mutant stream: same seed and
    // index, same mutant, same structured outcome.
    const ReplayOutcome a = replay_one_liner("seed=5 recipe=par:pipe2 hostile=0");
    const ReplayOutcome b = replay_one_liner("seed=5 recipe=par:pipe2 hostile=0");
    EXPECT_TRUE(a.ok) << a.error;
    EXPECT_FALSE(a.reproduced); // the hardened parser handles it
    EXPECT_EQ(a.hostile.parsed, b.hostile.parsed);
    EXPECT_EQ(a.hostile.error, b.hostile.error);
}

TEST(RoundTrip, WriteParseWriteIsByteStable) {
    // write_g must be a fixpoint under re-parsing: once for the paper's
    // benchmark nets, once for 50 generated ones.
    std::size_t bench_nets = 0;
    for (const auto& entry : bench::table1_suite()) {
        const std::string g1 = stg::write_g(bench::load(entry));
        EXPECT_EQ(g1, stg::write_g(stg::read_g(g1))) << g1.substr(0, 40);
        ++bench_nets;
    }
    EXPECT_GE(bench_nets, 9u);
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
        const std::string g1 = stg::write_g(generate(seed));
        EXPECT_EQ(g1, stg::write_g(stg::read_g(g1))) << "seed " << seed;
    }
}

} // namespace
} // namespace si::gen
