// Differential tests for the spec insertion engines: Eager, Cegar and
// Portfolio must choose byte-identical insertions — on the Table 1
// benchmarks, on generated nets, at any thread-pool width, and across
// repeated runs. Canonical (lex-min, layer-ordered) model enumeration is
// the mechanism; these tests are the contract.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "si/bench_stgs/table1.hpp"
#include "si/gen/gen.hpp"
#include "si/mc/requirement.hpp"
#include "si/sg/analysis.hpp"
#include "si/sg/from_stg.hpp"
#include "si/sg/minimize_sg.hpp"
#include "si/synth/insertion.hpp"
#include "si/synth/spec.hpp"
#include "si/synth/synthesize.hpp"
#include "si/util/budget.hpp"
#include "si/util/parallel.hpp"

namespace si::synth {
namespace {

std::vector<si::RegionId> violated_regions(const sg::RegionAnalysis& ra) {
    const mc::McReport report = mc::check_requirement(ra, {});
    std::vector<si::RegionId> out;
    for (const auto& r : report.regions)
        if (!r.ok()) out.push_back(r.region);
    return out;
}

/// The comparable fingerprint of one insertion round: every candidate's
/// labeling (the byte-identity the engines promise) plus its name and
/// expansion size.
struct RoundResult {
    std::vector<std::vector<XLabel>> labels;
    std::vector<std::size_t> sizes;

    friend bool operator==(const RoundResult&, const RoundResult&) = default;
};

RoundResult round_result(const sg::RegionAnalysis& ra, std::span<const si::RegionId> victims,
                         InsertEngine engine, std::size_t max_attempts = 1024) {
    InsertionOptions opts;
    opts.engine = engine;
    opts.max_attempts = max_attempts;
    RoundResult rr;
    for (const auto& c : insert_signal_candidates(ra, victims, "csc0", 3, opts)) {
        rr.labels.push_back(c.labels);
        rr.sizes.push_back(c.graph.num_states());
    }
    return rr;
}

// ---------------------------------------------------------------------------
// Table 1

TEST(SynthSpec, EnginesChooseIdenticalCandidatesOnTable1) {
    for (const auto& e : bench::table1_suite()) {
        const sg::StateGraph graph = sg::build_state_graph(bench::load(e));
        const sg::RegionAnalysis ra(graph);
        const auto victims = violated_regions(ra);
        if (victims.empty()) continue; // nothing to insert for
        const RoundResult eager = round_result(ra, victims, InsertEngine::Eager);
        const RoundResult cegar = round_result(ra, victims, InsertEngine::Cegar);
        const RoundResult portfolio = round_result(ra, victims, InsertEngine::Portfolio);
        EXPECT_EQ(eager, cegar) << e.name;
        EXPECT_EQ(eager, portfolio) << e.name;
        EXPECT_FALSE(eager.labels.empty()) << e.name;
    }
}

TEST(SynthSpec, EnginesSynthesizeIdenticalNetlistsOnTable1) {
    for (const auto& e : bench::table1_suite()) {
        std::string baseline;
        std::vector<std::string> baseline_names;
        for (const InsertEngine eng :
             {InsertEngine::Eager, InsertEngine::Cegar, InsertEngine::Portfolio}) {
            SynthOptions opts;
            opts.insertion.engine = eng;
            const SynthesisResult res = synthesize(sg::build_state_graph(bench::load(e)), opts);
            if (eng == InsertEngine::Eager) {
                baseline = res.summary();
                baseline_names = res.inserted;
            } else {
                EXPECT_EQ(res.summary(), baseline) << e.name << " / " << to_string(eng);
                EXPECT_EQ(res.inserted, baseline_names) << e.name << " / " << to_string(eng);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Generated nets

TEST(SynthSpec, EnginesAgreeOnGeneratedNets) {
    constexpr std::uint64_t kCampaign = 0x51c0ffee;
    constexpr int kNets = 50;
    int exercised = 0;
    for (int i = 0; i < kNets; ++i) {
        const stg::Stg net = gen::generate(gen::derive_seed(kCampaign, i));
        const sg::StateGraph graph =
            sg::minimize_bisimulation(sg::build_state_graph(net));
        const sg::RegionAnalysis ra(graph);
        const auto victims = violated_regions(ra);
        if (victims.empty()) continue; // CSC already holds
        ++exercised;
        // A modest attempt cap keeps the 50-net sweep quick; it truncates
        // the shared canonical stream at the same point for every engine,
        // so identity must still hold exactly.
        const RoundResult eager = round_result(ra, victims, InsertEngine::Eager, 24);
        const RoundResult cegar = round_result(ra, victims, InsertEngine::Cegar, 24);
        const RoundResult portfolio = round_result(ra, victims, InsertEngine::Portfolio, 24);
        EXPECT_EQ(eager, cegar) << net.name << " (net " << i << ")";
        EXPECT_EQ(eager, portfolio) << net.name << " (net " << i << ")";
    }
    // The generator's seq/choice blocks violate CSC on purpose; a sweep
    // this size must exercise the insertion path many times.
    EXPECT_GE(exercised, 10);
}

// ---------------------------------------------------------------------------
// Thread-pool width

TEST(SynthSpec, PortfolioIsInvariantUnderThreadCount) {
    struct Case {
        const char* name;
        RoundResult result;
    };
    std::vector<Case> baseline;
    const auto harder = [](const std::string& n) {
        return n == "duplicator" || n == "berkel3" || n == "ganesh_8";
    };
    for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        util::set_num_threads(workers);
        std::size_t idx = 0;
        for (const auto& e : bench::table1_suite()) {
            if (!harder(e.name)) continue;
            const sg::StateGraph graph = sg::build_state_graph(bench::load(e));
            const sg::RegionAnalysis ra(graph);
            const auto victims = violated_regions(ra);
            ASSERT_FALSE(victims.empty()) << e.name;
            RoundResult rr = round_result(ra, victims, InsertEngine::Portfolio);
            if (workers == 1) {
                baseline.push_back({e.name.c_str(), std::move(rr)});
            } else {
                ASSERT_LT(idx, baseline.size());
                EXPECT_EQ(rr, baseline[idx].result)
                    << e.name << " with " << workers << " workers";
            }
            ++idx;
        }
    }
    util::set_num_threads(0); // restore the default for other tests
}

// ---------------------------------------------------------------------------
// Determinism and stream-level stats

TEST(SynthSpec, StreamStatsAreEncodingInvariant) {
    for (const auto& e : bench::table1_suite()) {
        const sg::StateGraph graph = sg::build_state_graph(bench::load(e));
        const sg::RegionAnalysis ra(graph);
        const auto victims = violated_regions(ra);
        if (victims.empty()) continue;
        InsertionOptions opts;
        const SpecResult eager =
            run_spec_engine(ra, victims, "csc0", 3, opts, SpecEncoding::Eager, 0, nullptr);
        const SpecResult cegar =
            run_spec_engine(ra, victims, "csc0", 3, opts, SpecEncoding::Cegar, 0, nullptr);
        // Stream-level fields are functions of the shared canonical model
        // stream; solver-level effort (sat_calls, conflicts, refinements)
        // legitimately differs between encodings.
        EXPECT_EQ(eager.stats.attempts, cegar.stats.attempts) << e.name;
        EXPECT_EQ(eager.stats.accepted, cegar.stats.accepted) << e.name;
        EXPECT_EQ(eager.stats.layers, cegar.stats.layers) << e.name;
        EXPECT_EQ(eager.stats.complete, cegar.stats.complete) << e.name;
        EXPECT_EQ(eager.outcomes.size(), cegar.outcomes.size()) << e.name;
        // CEGAR starts from a skeleton: refinement is its defining move.
        if (eager.stats.attempts > 0) EXPECT_GT(cegar.stats.refinements, 0u) << e.name;
    }
}

TEST(SynthSpec, PortfolioWinChargesStreamAttemptsAndNoConflicts) {
    // The budget audit for racing: a won race re-charges exactly the
    // canonical stream's attempt count (the same for every possible
    // winner) and drops all racer shards, so none of the racers' solver
    // Conflicts ever reach the caller's budget.
    for (const auto& e : bench::table1_suite()) {
        if (e.name != "duplicator") continue;
        const sg::StateGraph graph = sg::build_state_graph(bench::load(e));
        const sg::RegionAnalysis ra(graph);
        const auto victims = violated_regions(ra);
        ASSERT_FALSE(victims.empty());
        InsertionOptions ref_opts;
        const SpecResult ref = run_spec_engine(ra, victims, "csc0", 3, ref_opts,
                                               SpecEncoding::Eager, 0, nullptr);
        ASSERT_GT(ref.stats.attempts, 0u);

        util::Budget budget;
        budget.cap(util::Resource::Conflicts, 10'000'000)
            .cap(util::Resource::Attempts, 1'000'000);
        InsertionOptions opts;
        opts.engine = InsertEngine::Portfolio;
        opts.budget = &budget;
        const auto candidates = insert_signal_candidates(ra, victims, "csc0", 3, opts);
        EXPECT_FALSE(candidates.empty());
        EXPECT_EQ(budget.consumed(util::Resource::Attempts), ref.stats.attempts);
        EXPECT_EQ(budget.consumed(util::Resource::Conflicts), 0u);
        EXPECT_FALSE(budget.exhausted());
    }
}

TEST(SynthSpec, RepeatedRunsAreIdentical) {
    for (const auto& e : bench::table1_suite()) {
        if (e.name != "duplicator") continue;
        const sg::StateGraph graph = sg::build_state_graph(bench::load(e));
        const sg::RegionAnalysis ra(graph);
        const auto victims = violated_regions(ra);
        ASSERT_FALSE(victims.empty());
        const RoundResult first = round_result(ra, victims, InsertEngine::Portfolio);
        for (int repeat = 0; repeat < 3; ++repeat)
            EXPECT_EQ(round_result(ra, victims, InsertEngine::Portfolio), first)
                << "repeat " << repeat;
    }
}

TEST(SynthSpec, SeedOnlyMovesSolverEffortNeverTheResult) {
    for (const auto& e : bench::table1_suite()) {
        if (e.name != "berkel3") continue;
        const sg::StateGraph graph = sg::build_state_graph(bench::load(e));
        const sg::RegionAnalysis ra(graph);
        const auto victims = violated_regions(ra);
        ASSERT_FALSE(victims.empty());
        InsertionOptions opts;
        const SpecResult base =
            run_spec_engine(ra, victims, "csc0", 3, opts, SpecEncoding::Eager, 0, nullptr);
        for (const std::uint64_t seed : {1ull, 42ull, 0x9e3779b97f4a7c15ull}) {
            const SpecResult other = run_spec_engine(ra, victims, "csc0", 3, opts,
                                                     SpecEncoding::Eager, seed, nullptr);
            ASSERT_EQ(other.outcomes.size(), base.outcomes.size()) << "seed " << seed;
            for (std::size_t i = 0; i < base.outcomes.size(); ++i)
                EXPECT_EQ(other.outcomes[i].labels, base.outcomes[i].labels)
                    << "seed " << seed;
            EXPECT_EQ(other.stats.attempts, base.stats.attempts) << "seed " << seed;
        }
    }
}

} // namespace
} // namespace si::synth
