// Cross-engine agreement and governance of mc::check_stg: the symbolic
// (BDD) MC engine must reach the same Def-18 verdict as the explicit
// unfolding on every net both can handle, charge the same "mc.check"
// Steps, and degrade to a reported Exhaustion instead of throwing.
#include <gtest/gtest.h>

#include <fstream>

#include "si/bench_stgs/table1.hpp"
#include "si/gen/gen.hpp"
#include "si/mc/symbolic.hpp"
#include "si/sg/from_stg.hpp"

namespace si {
namespace {

// The checked-in million-state recipe (bench/million_state.recipe):
// first non-comment line of the file.
gen::Recipe million_recipe() {
    std::ifstream in(SI_MILLION_RECIPE);
    EXPECT_TRUE(in.is_open()) << SI_MILLION_RECIPE;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#') continue;
        const auto recipe = gen::Recipe::parse(line);
        EXPECT_TRUE(recipe.has_value()) << line;
        return *recipe;
    }
    ADD_FAILURE() << "no recipe line in " << SI_MILLION_RECIPE;
    return gen::Recipe{};
}

void expect_agreement(const stg::Stg& net, const std::string& what) {
    const auto ex = mc::check_stg(net, mc::Engine::Explicit);
    const auto sy = mc::check_stg(net, mc::Engine::Symbolic);
    ASSERT_TRUE(ex.complete()) << what << ": " << ex.describe();
    ASSERT_TRUE(sy.complete()) << what << ": " << sy.describe();
    EXPECT_EQ(ex.satisfied, sy.satisfied) << what;
    EXPECT_EQ(ex.regions, sy.regions) << what;
    EXPECT_EQ(ex.missing, sy.missing) << what;
    EXPECT_DOUBLE_EQ(ex.reachable_states, sy.reachable_states) << what;
}

TEST(McSymbolic, AgreesWithExplicitOnTable1Suite) {
    for (const auto& entry : bench::table1_suite())
        expect_agreement(bench::load(entry), entry.name);
}

TEST(McSymbolic, AgreesWithExplicitOnGeneratedNets) {
    for (std::uint64_t i = 0; i < 50; ++i) {
        const auto seed = gen::derive_seed(0x51c0ffee, i);
        const gen::Recipe recipe = gen::random_recipe(seed);
        expect_agreement(gen::build(recipe), recipe.to_string());
    }
}

TEST(McSymbolic, AutoSelectsEngineByEstimatedStateCount) {
    const stg::Stg net = gen::build(*gen::Recipe::parse("par:ring3,ring3"));
    const auto small = mc::check_stg(net, mc::Engine::Auto);
    ASSERT_TRUE(small.complete());
    EXPECT_EQ(small.used, mc::Engine::Explicit);

    mc::StgMcOptions opts;
    opts.auto_threshold = 4; // force the symbolic side on the same net
    const auto big = mc::check_stg(net, mc::Engine::Auto, opts);
    ASSERT_TRUE(big.complete());
    EXPECT_EQ(big.used, mc::Engine::Symbolic);
    const auto ex = mc::check_stg(net, mc::Engine::Explicit);
    EXPECT_EQ(ex.satisfied, big.satisfied);
    EXPECT_EQ(ex.regions, big.regions);
    EXPECT_EQ(ex.missing, big.missing);
}

TEST(McSymbolic, SymbolicChargesOneStepPerRegionUnderMcCheck) {
    // Budget::shard fairness across engines hangs on both engines
    // metering the same stage with the same unit: one Steps charge per
    // non-input excitation region under "mc.check".
    const stg::Stg net = bench::load(bench::table1_suite().front());
    util::Budget counting;
    const auto res = mc::check_stg(net, mc::Engine::Symbolic, {}, &counting);
    ASSERT_TRUE(res.complete());
    ASSERT_GT(res.regions, 0u);
    EXPECT_EQ(counting.consumed(util::Resource::Steps), res.regions);

    util::Budget starved;
    starved.cap(util::Resource::Steps, res.regions - 1);
    const auto tripped = mc::check_stg(net, mc::Engine::Symbolic, {}, &starved);
    EXPECT_FALSE(tripped.complete());
    EXPECT_NE(tripped.exhaustion->stage.find("mc.check"), std::string::npos)
        << tripped.exhaustion->stage;
}

TEST(McSymbolic, ExplicitEngineChargesTheSameMcCheckSteps) {
    const stg::Stg net = bench::load(bench::table1_suite().front());
    util::Budget sym_budget, exp_budget;
    const auto sy = mc::check_stg(net, mc::Engine::Symbolic, {}, &sym_budget);
    const auto ex = mc::check_stg(net, mc::Engine::Explicit, {}, &exp_budget);
    ASSERT_TRUE(sy.complete());
    ASSERT_TRUE(ex.complete());
    // The explicit side also charges sg.explore Steps for the unfolding;
    // the mc.check share is exactly the region count on both engines.
    EXPECT_EQ(sym_budget.consumed(util::Resource::Steps), sy.regions);
    EXPECT_GE(exp_budget.consumed(util::Resource::Steps), ex.regions);
}

TEST(McSymbolic, BddNodeExhaustionIsReportedNotThrown) {
    const stg::Stg net = bench::load(bench::table1_suite().front());
    util::Budget tiny;
    tiny.cap(util::Resource::BddNodes, 16);
    const auto res = mc::check_stg(net, mc::Engine::Symbolic, {}, &tiny);
    EXPECT_FALSE(res.complete());
    EXPECT_EQ(res.exhaustion->resource, util::Resource::BddNodes);
}

// The two halves of the explicit-state wall, on the checked-in
// million-state recipe: the symbolic engine returns a complete Def-18
// verdict without ever materializing the graph, while the explicit
// engine trips its state budget and reports Unknown — it must not abort.
TEST(McSymbolic, MillionStateRecipeTripsExplicitBudgetToUnknown) {
    const stg::Stg net = gen::build(million_recipe());
    const auto ex = mc::check_stg(net, mc::Engine::Explicit);
    EXPECT_FALSE(ex.complete());
    ASSERT_TRUE(ex.exhaustion.has_value());
    EXPECT_FALSE(ex.exhaustion->stage.empty());
}

TEST(McSymbolic, MillionStateRecipeCompletesSymbolically) {
    const stg::Stg net = gen::build(million_recipe());
    const auto sy = mc::check_stg(net, mc::Engine::Symbolic);
    ASSERT_TRUE(sy.complete()) << sy.describe();
    EXPECT_GE(sy.reachable_states, 1e6);
    EXPECT_TRUE(sy.satisfied) << sy.describe();
    EXPECT_GT(sy.regions, 0u);
}

TEST(McSymbolic, VerdictIsDeterministicAcrossRepeats) {
    const stg::Stg net = gen::build(*gen::Recipe::parse("par:ring2,seq2"));
    const auto first = mc::check_stg(net, mc::Engine::Symbolic);
    for (int i = 0; i < 3; ++i) {
        const auto again = mc::check_stg(net, mc::Engine::Symbolic);
        EXPECT_EQ(first.satisfied, again.satisfied);
        EXPECT_EQ(first.regions, again.regions);
        EXPECT_EQ(first.missing, again.missing);
        EXPECT_DOUBLE_EQ(first.reachable_states, again.reachable_states);
    }
}

} // namespace
} // namespace si
