// Speed-independence verifier tests: good circuits pass, the paper's
// hazardous example fails with the right diagnosis, fault injection is
// caught, conformance and deadlock are detected.
#include <gtest/gtest.h>

#include "si/bench_stgs/figures.hpp"
#include "si/netlist/builder.hpp"
#include "si/sg/read_sg.hpp"
#include "si/verify/verifier.hpp"

namespace si::verify {
namespace {

sg::StateGraph handshake() {
    return sg::read_sg(R"(
.model hs
.inputs r
.outputs a
.arcs
00 r+ 10
10 a+ 11
11 r- 01
01 a- 00
.initial 00
.end
)");
}

net::Netlist wire_impl(const sg::StateGraph& g) {
    net::Netlist nl(g.signals());
    nl.name = "wire";
    const GateId in = nl.add_gate(net::GateKind::Input, "r", {}, g.signals().find("r"));
    (void)in;
    nl.add_gate(net::GateKind::Wire, "a", {{in, false}}, g.signals().find("a"));
    return nl;
}

TEST(Verify, WireHandshakePasses) {
    const auto g = handshake();
    const auto result = verify_speed_independence(wire_impl(g), g);
    EXPECT_TRUE(result.ok);
    EXPECT_GT(result.states_explored, 0u);
    EXPECT_NE(result.describe().find("speed-independent"), std::string::npos);
}

TEST(Verify, InvertedWireIsNonConformant) {
    const auto g = handshake();
    net::Netlist nl(g.signals());
    const GateId in = nl.add_gate(net::GateKind::Input, "r", {}, g.signals().find("r"));
    // a = NOT r fires immediately at reset where the spec expects a+
    // only after r+.
    nl.add_gate(net::GateKind::Not, "a", {{in, false}}, g.signals().find("a"));
    const auto result = verify_speed_independence(nl, g);
    ASSERT_FALSE(result.ok);
    // Depending on interleaving order the first witness is either the
    // spurious a+ itself (non-conformance) or the inverter being choked
    // by r+ before a could fire (disabling) — both are the same bug.
    EXPECT_TRUE(result.violations[0].kind == ViolationKind::NonConformant ||
                result.violations[0].kind == ViolationKind::GateDisabled);
}

TEST(Verify, Figure4NaiveImplementationHazard) {
    // The paper's Example 2: t = c'd, b = a + t. The AND gate t starts
    // switching on entry to ER(+b,2) but can be disabled.
    const auto g = bench::figure4();
    net::Netlist nl(g.signals());
    const GateId ga = nl.add_gate(net::GateKind::Input, "a", {}, g.signals().find("a"));
    const GateId gc = nl.add_gate(net::GateKind::Input, "c", {}, g.signals().find("c"));
    const GateId gd = nl.add_gate(net::GateKind::Input, "d", {}, g.signals().find("d"));
    const GateId t = nl.add_gate(net::GateKind::And, "t", {{gc, true}, {gd, false}});
    nl.add_gate(net::GateKind::Or, "b", {{ga, false}, {t, false}}, g.signals().find("b"));

    const auto result = verify_speed_independence(nl, g);
    ASSERT_FALSE(result.ok);
    EXPECT_EQ(result.violations[0].kind, ViolationKind::GateDisabled);
    EXPECT_NE(result.violations[0].message.find("'t'"), std::string::npos);
    EXPECT_FALSE(result.violations[0].trace.empty());
}

TEST(Verify, StuckCircuitDeadlocks) {
    const auto g = handshake();
    net::Netlist nl(g.signals());
    const GateId in = nl.add_gate(net::GateKind::Input, "r", {}, g.signals().find("r"));
    // a = r AND (NOT r): constant 0 - after r+, the spec waits for a+
    // forever while nothing is excited.
    const GateId dead = nl.add_gate(net::GateKind::And, "z", {{in, false}, {in, true}});
    nl.add_gate(net::GateKind::Wire, "a", {{dead, false}}, g.signals().find("a"));
    const auto result = verify_speed_independence(nl, g);
    ASSERT_FALSE(result.ok);
    EXPECT_EQ(result.violations[0].kind, ViolationKind::Deadlock);
}

TEST(Verify, FaultInjectionWrongPolarity) {
    // Build the correct C-implementation of the handshake, then flip the
    // polarity of one literal: verification must catch it.
    const auto g = handshake();
    net::SignalNetwork na;
    na.signal = g.signals().find("a");
    Cube up(2), down(2);
    up.set_lit(g.signals().find("r"), Lit::One);
    down.set_lit(g.signals().find("r"), Lit::Zero);
    na.up_cubes = {up};
    na.down_cubes = {down};
    const auto good = net::build_standard_implementation(g, {na});
    EXPECT_TRUE(verify_speed_independence(good, g).ok);

    net::SignalNetwork bad = na;
    bad.up_cubes = {down}; // set function inverted
    bad.down_cubes = {up};
    const auto broken = net::build_standard_implementation(g, {bad});
    EXPECT_FALSE(verify_speed_independence(broken, g).ok);
}

TEST(Verify, StateCapReported) {
    const auto g = handshake();
    VerifyOptions opts;
    opts.max_states = 1;
    const auto result = verify_speed_independence(wire_impl(g), g, opts);
    ASSERT_FALSE(result.ok);
    EXPECT_EQ(result.violations[0].kind, ViolationKind::StateExplosion);
}

TEST(Verify, CollectAllViolations) {
    const auto g = bench::figure4();
    net::Netlist nl(g.signals());
    const GateId ga = nl.add_gate(net::GateKind::Input, "a", {}, g.signals().find("a"));
    const GateId gc = nl.add_gate(net::GateKind::Input, "c", {}, g.signals().find("c"));
    const GateId gd = nl.add_gate(net::GateKind::Input, "d", {}, g.signals().find("d"));
    const GateId t = nl.add_gate(net::GateKind::And, "t", {{gc, true}, {gd, false}});
    nl.add_gate(net::GateKind::Or, "b", {{ga, false}, {t, false}}, g.signals().find("b"));
    VerifyOptions opts;
    opts.stop_at_first = false;
    const auto result = verify_speed_independence(nl, g, opts);
    EXPECT_FALSE(result.ok);
    EXPECT_GE(result.violations.size(), 1u);
}

} // namespace
} // namespace si::verify
