// Incremental-interface tests for the CDCL solver: solving under
// assumptions and retracting them, clause/activity retention across
// calls versus a one-shot solver, per-call stats, and the invariants the
// spec insertion engine leans on (assumption-prefix trail reuse,
// cooperative cancellation, seed perturbation soundness).
#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <vector>

#include "si/sat/solver.hpp"

namespace si::sat {
namespace {

// ---------------------------------------------------------------------------
// Assumption solve / retract

TEST(SatIncremental, AssumptionsSelectModelsWithoutCommitting) {
    Solver s;
    const Var a = s.new_var();
    const Var b = s.new_var();
    ASSERT_TRUE(s.add_clause({pos(a), pos(b)}));

    ASSERT_EQ(s.solve(std::vector<Lit>{neg(a)}), Result::Sat);
    EXPECT_FALSE(s.model_value(a));
    EXPECT_TRUE(s.model_value(b));

    // Retracting the assumption restores the full model space: the
    // opposite assumption is satisfiable on the same clause database.
    ASSERT_EQ(s.solve(std::vector<Lit>{pos(a), neg(b)}), Result::Sat);
    EXPECT_TRUE(s.model_value(a));
    EXPECT_FALSE(s.model_value(b));

    // And with no assumptions at all the instance is still Sat.
    EXPECT_EQ(s.solve(), Result::Sat);
}

TEST(SatIncremental, ContradictoryAssumptionsAreUnsatNotPermanent) {
    Solver s;
    const Var a = s.new_var();
    const Var b = s.new_var();
    ASSERT_TRUE(s.add_implies(pos(a), pos(b)));

    EXPECT_EQ(s.solve(std::vector<Lit>{pos(a), neg(b)}), Result::Unsat);
    // An assumption-level Unsat must not poison the database.
    EXPECT_EQ(s.solve(std::vector<Lit>{pos(a)}), Result::Sat);
    EXPECT_TRUE(s.model_value(b));
    EXPECT_EQ(s.solve(), Result::Sat);
}

TEST(SatIncremental, SelfContradictoryAssumptionVectorIsUnsat) {
    Solver s;
    const Var a = s.new_var();
    (void)s.new_var();
    EXPECT_EQ(s.solve(std::vector<Lit>{pos(a), neg(a)}), Result::Unsat);
    EXPECT_EQ(s.solve(), Result::Sat);
}

TEST(SatIncremental, SharedAssumptionPrefixReusesTrail) {
    // The spec engine's lex-min commit loop issues solve() calls whose
    // assumption vectors grow by one literal each time. The solver keeps
    // the shared prefix's trail levels; at minimum the answers must stay
    // right across a long run of such calls.
    Solver s;
    constexpr int kN = 16;
    std::vector<Var> v;
    for (int i = 0; i < kN; ++i) v.push_back(s.new_var());
    // Chain i -> i+1 so assumptions propagate something.
    for (int i = 0; i + 1 < kN; ++i) ASSERT_TRUE(s.add_implies(pos(v[i]), pos(v[i + 1])));

    std::vector<Lit> assumps;
    for (int i = 0; i < kN; ++i) {
        assumps.push_back(pos(v[i]));
        ASSERT_EQ(s.solve(assumps), Result::Sat) << "prefix length " << i + 1;
        // v[0..i] are assumed true and the chain forces the rest.
        for (int j = 0; j < kN; ++j) EXPECT_TRUE(s.model_value(v[j]));
    }
    // Now flip the first assumption — the whole kept prefix must unwind.
    ASSERT_EQ(s.solve(std::vector<Lit>{neg(v[0])}), Result::Sat);
    EXPECT_FALSE(s.model_value(v[0]));
}

TEST(SatIncremental, AddClauseInvalidatesKeptAssumptionLevels) {
    Solver s;
    const Var a = s.new_var();
    const Var b = s.new_var();
    ASSERT_TRUE(s.add_clause({pos(a), pos(b)}));
    ASSERT_EQ(s.solve(std::vector<Lit>{pos(a)}), Result::Sat);
    // A new clause falsifying the kept assumption level must be honored
    // by the next call, not masked by trail reuse.
    ASSERT_TRUE(s.add_clause({neg(a)}));
    EXPECT_EQ(s.solve(std::vector<Lit>{pos(a)}), Result::Unsat);
    ASSERT_EQ(s.solve(), Result::Sat);
    EXPECT_FALSE(s.model_value(a));
    EXPECT_TRUE(s.model_value(b));
}

// ---------------------------------------------------------------------------
// Clause retention vs one-shot solving

// Blocking-loop enumeration on one incremental solver must agree with a
// fresh solver per query, clause for clause. This is exactly the spec
// engine's usage pattern (block a model, re-solve).
TEST(SatIncremental, BlockingLoopMatchesOneShotEnumeration) {
    std::mt19937_64 rng(7);
    for (int round = 0; round < 25; ++round) {
        constexpr int kVars = 9;
        const int n_clauses = 3 + static_cast<int>(rng() % 30);
        std::vector<std::vector<Lit>> clauses;
        for (int c = 0; c < n_clauses; ++c) {
            std::vector<Lit> cl;
            for (int k = 0; k < 3; ++k)
                cl.push_back(Lit(static_cast<Var>(rng() % kVars), (rng() & 1) != 0));
            clauses.push_back(std::move(cl));
        }

        const auto count_incremental = [&clauses]() {
            Solver s;
            for (int i = 0; i < kVars; ++i) (void)s.new_var();
            for (const auto& cl : clauses)
                if (!s.add_clause(std::span<const Lit>(cl.data(), cl.size()))) return 0;
            int models = 0;
            while (s.solve() == Result::Sat) {
                ++models;
                std::vector<Lit> block;
                for (Var v = 0; v < kVars; ++v)
                    block.push_back(Lit(v, s.model_value(v)));
                if (!s.add_clause(std::span<const Lit>(block.data(), block.size()))) break;
            }
            return models;
        };

        // Brute force over all 2^9 assignments.
        int expected = 0;
        for (unsigned m = 0; m < (1u << kVars); ++m) {
            bool ok = true;
            for (const auto& cl : clauses) {
                bool sat = false;
                for (const Lit l : cl)
                    sat = sat || (((m >> l.var()) & 1u) != 0) != l.negative();
                ok = ok && sat;
            }
            expected += ok ? 1 : 0;
        }
        EXPECT_EQ(count_incremental(), expected) << "round " << round;
    }
}

TEST(SatIncremental, LearntClausesPersistAcrossCalls) {
    // PHP(4,3) twice on one solver: the second run starts from the first
    // run's learnt clauses and must not be more expensive.
    Solver s;
    Var p[4][3];
    for (auto& row : p)
        for (auto& v : row) v = s.new_var();
    const Var gate = s.new_var(); // lets us re-ask the same question
    for (int i = 0; i < 4; ++i)
        s.add_clause({neg(gate), pos(p[i][0]), pos(p[i][1]), pos(p[i][2])});
    for (int h = 0; h < 3; ++h)
        for (int i = 0; i < 4; ++i)
            for (int j = i + 1; j < 4; ++j) s.add_clause({neg(p[i][h]), neg(p[j][h])});

    ASSERT_EQ(s.solve(std::vector<Lit>{pos(gate)}), Result::Unsat);
    const std::uint64_t first = s.last_stats().conflicts;
    ASSERT_EQ(s.solve(std::vector<Lit>{pos(gate)}), Result::Unsat);
    const std::uint64_t second = s.last_stats().conflicts;
    EXPECT_GT(first, 0u);
    EXPECT_LE(second, first);
}

// ---------------------------------------------------------------------------
// Stats

TEST(SatIncremental, LifetimeCountersAreMonotoneAndLastStatsAreDeltas) {
    Solver s;
    Var p[3][2];
    for (auto& row : p)
        for (auto& v : row) v = s.new_var();
    for (int i = 0; i < 3; ++i) s.add_clause({pos(p[i][0]), pos(p[i][1])});
    for (int h = 0; h < 2; ++h)
        for (int i = 0; i < 3; ++i)
            for (int j = i + 1; j < 3; ++j) s.add_clause({neg(p[i][h]), neg(p[j][h])});

    std::uint64_t conflicts = 0, decisions = 0, propagations = 0;
    for (int call = 0; call < 3; ++call) {
        const std::uint64_t c0 = s.conflicts(), d0 = s.decisions(), g0 = s.propagations();
        (void)s.solve();
        EXPECT_GE(s.conflicts(), c0);
        EXPECT_GE(s.decisions(), d0);
        EXPECT_GE(s.propagations(), g0);
        EXPECT_EQ(s.last_stats().conflicts, s.conflicts() - c0);
        EXPECT_EQ(s.last_stats().decisions, s.decisions() - d0);
        EXPECT_EQ(s.last_stats().propagations, s.propagations() - g0);
        conflicts = s.conflicts();
        decisions = s.decisions();
        propagations = s.propagations();
    }
    (void)conflicts;
    (void)decisions;
    (void)propagations;
}

TEST(SatIncremental, ConflictBudgetReturnsUnknownAndRecovers) {
    Solver s;
    Var p[5][4];
    for (auto& row : p)
        for (auto& v : row) v = s.new_var();
    for (int i = 0; i < 5; ++i)
        s.add_clause({pos(p[i][0]), pos(p[i][1]), pos(p[i][2]), pos(p[i][3])});
    for (int h = 0; h < 4; ++h)
        for (int i = 0; i < 5; ++i)
            for (int j = i + 1; j < 5; ++j) s.add_clause({neg(p[i][h]), neg(p[j][h])});

    s.set_conflict_budget(1);
    EXPECT_EQ(s.solve(), Result::Unknown);
    EXPECT_TRUE(s.budget_exhausted());
    EXPECT_FALSE(s.cancelled());

    s.set_conflict_budget(0);
    EXPECT_EQ(s.solve(), Result::Unsat);
    EXPECT_FALSE(s.budget_exhausted());
}

TEST(SatIncremental, PreRaisedCancelFlagStopsSolve) {
    Solver s;
    Var p[4][3];
    for (auto& row : p)
        for (auto& v : row) v = s.new_var();
    for (int i = 0; i < 4; ++i) s.add_clause({pos(p[i][0]), pos(p[i][1]), pos(p[i][2])});
    for (int h = 0; h < 3; ++h)
        for (int i = 0; i < 4; ++i)
            for (int j = i + 1; j < 4; ++j) s.add_clause({neg(p[i][h]), neg(p[j][h])});

    std::atomic<bool> cancel{true};
    s.set_cancel(&cancel);
    EXPECT_EQ(s.solve(), Result::Unknown);
    EXPECT_TRUE(s.cancelled());
    EXPECT_FALSE(s.budget_exhausted());

    cancel.store(false);
    EXPECT_EQ(s.solve(), Result::Unsat);
    EXPECT_FALSE(s.cancelled());
}

// ---------------------------------------------------------------------------
// Seed perturbation

TEST(SatIncremental, SeedNeverChangesTheVerdict) {
    std::mt19937_64 rng(11);
    for (int round = 0; round < 15; ++round) {
        constexpr int kVars = 8;
        const int n_clauses = 3 + static_cast<int>(rng() % 28);
        std::vector<std::vector<Lit>> clauses;
        for (int c = 0; c < n_clauses; ++c) {
            std::vector<Lit> cl;
            for (int k = 0; k < 3; ++k)
                cl.push_back(Lit(static_cast<Var>(rng() % kVars), (rng() & 1) != 0));
            clauses.push_back(std::move(cl));
        }
        Result verdicts[3];
        int idx = 0;
        for (const std::uint64_t seed : {0ull, 1ull, 0xdeadbeefull}) {
            Solver s;
            for (int i = 0; i < kVars; ++i) (void)s.new_var();
            bool consistent = true;
            for (const auto& cl : clauses)
                consistent =
                    s.add_clause(std::span<const Lit>(cl.data(), cl.size())) && consistent;
            s.set_seed(seed);
            verdicts[idx++] = consistent ? s.solve() : Result::Unsat;
        }
        EXPECT_EQ(verdicts[0], verdicts[1]) << "round " << round;
        EXPECT_EQ(verdicts[0], verdicts[2]) << "round " << round;
    }
}

} // namespace
} // namespace si::sat
