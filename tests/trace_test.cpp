// Unit tests for si::obs::trace and the request-scoped context plumbing:
// log2-histogram percentile derivation (exact values on hand-built
// histograms, monotonicity), critical-path extraction and its
// determinism across worker counts, folded-stack export, the profile
// interchange round-trip, self-time partition of the tick lane, the
// opt-in wall lane, and request-id propagation through thread-pool
// fan-outs (obs::RequestScope / util::RequestContext).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <string>
#include <vector>

#include "si/gen/gen.hpp"
#include "si/obs/obs.hpp"
#include "si/obs/report.hpp"
#include "si/obs/trace.hpp"
#include "si/util/parallel.hpp"
#include "si/util/request.hpp"

namespace si {
namespace {

/// Every test runs with a clean registry and leaves obs off.
struct ObsGuard {
    explicit ObsGuard(obs::Mode m) {
        obs::set_mode(m);
        obs::reset();
    }
    ~ObsGuard() {
        util::set_num_threads(0);
        obs::set_wall_lane(false);
        obs::set_mode(obs::Mode::Off);
        obs::reset();
    }
};

std::array<std::uint64_t, 65> empty_hist() {
    std::array<std::uint64_t, 65> h{};
    return h;
}

// ---------------------------------------------------------------------------
// Percentiles

TEST(TracePercentiles, EmptyHistogramReportsNoData) {
    const auto p = obs::trace::percentiles(empty_hist());
    EXPECT_EQ(p.count, 0u);
    EXPECT_EQ(p.p50, 0u);
    EXPECT_EQ(p.p95, 0u);
    EXPECT_EQ(p.p99, 0u);
}

TEST(TracePercentiles, SingletonBucketsAreExact) {
    // Buckets 0 and 1 hold exactly {0} and {1}, so percentiles landing
    // there are exact, not upper bounds.
    auto h = empty_hist();
    h[0] = 100; // one hundred observations of value 0
    auto p = obs::trace::percentiles(h);
    EXPECT_EQ(p.count, 100u);
    EXPECT_EQ(p.p50, 0u);
    EXPECT_EQ(p.p99, 0u);

    h = empty_hist();
    h[1] = 7; // seven observations of value 1
    p = obs::trace::percentiles(h);
    EXPECT_EQ(p.count, 7u);
    EXPECT_EQ(p.p50, 1u);
    EXPECT_EQ(p.p95, 1u);
    EXPECT_EQ(p.p99, 1u);
}

TEST(TracePercentiles, NearestRankSelectsBucketUpperBound) {
    // 50 observations of 1 and 50 in [4,7] (bucket 3): the 50th-smallest
    // is still a 1, the 95th and 99th fall in bucket 3 and report its
    // upper bound 7.
    auto h = empty_hist();
    h[1] = 50;
    h[3] = 50;
    const auto p = obs::trace::percentiles(h);
    EXPECT_EQ(p.count, 100u);
    EXPECT_EQ(p.p50, 1u);
    EXPECT_EQ(p.p95, 7u);
    EXPECT_EQ(p.p99, 7u);
}

TEST(TracePercentiles, TwoObservationsRoundRanksUp) {
    // Nearest rank with count=2: p50 → rank 1 (the 1), p95/p99 → rank 2
    // (the 2, reported as bucket 2's upper bound 3).
    auto h = empty_hist();
    h[1] = 1; // value 1
    h[2] = 1; // value in [2,3]
    const auto p = obs::trace::percentiles(h);
    EXPECT_EQ(p.p50, 1u);
    EXPECT_EQ(p.p95, 3u);
    EXPECT_EQ(p.p99, 3u);
}

TEST(TracePercentiles, MonotoneAcrossSpreadHistograms) {
    auto h = empty_hist();
    for (std::size_t b = 0; b < 20; ++b) h[b] = (b * 7 + 3) % 11;
    const auto p = obs::trace::percentiles(h);
    EXPECT_LE(p.p50, p.p95);
    EXPECT_LE(p.p95, p.p99);
}

TEST(TracePercentiles, TopBucketSaturatesToMax) {
    auto h = empty_hist();
    h[64] = 10; // values with bit_width 64: upper bound saturates
    const auto p = obs::trace::percentiles(h);
    EXPECT_EQ(p.p50, UINT64_MAX);
}

TEST(TracePercentiles, MetricPercentilesMatchObservedValues) {
    ObsGuard guard(obs::Mode::Metrics);
    for (int i = 0; i < 10; ++i) obs::observe("t.lat", 1);
    obs::observe("t.lat", 6); // bucket 3, upper bound 7
    const auto p = obs::trace::metric_percentiles("t.lat");
    EXPECT_EQ(p.count, 11u);
    EXPECT_EQ(p.p50, 1u);
    EXPECT_EQ(p.p99, 7u);
    // Missing or non-histogram names report no data.
    EXPECT_EQ(obs::trace::metric_percentiles("t.nope").count, 0u);
    obs::count("t.counter", 3);
    EXPECT_EQ(obs::trace::metric_percentiles("t.counter").count, 0u);
}

// ---------------------------------------------------------------------------
// Snapshot structure, critical path, folded stacks

/// root{ a{ a1, a2 }, b{ b1 } } — subtree sizes 6/3/2, tick totals
/// 11/5/3, leaf totals 1.
void record_hand_tree() {
    obs::Span root("root");
    {
        obs::Span a("a");
        { obs::Span a1("a1"); }
        { obs::Span a2("a2"); }
    }
    {
        obs::Span b("b");
        { obs::Span b1("b1"); }
    }
}

TEST(TraceSnapshot, TickTotalsAndSelfTimesMatchSubtreeSizes) {
    ObsGuard guard(obs::Mode::Trace);
    record_hand_tree();
    const auto snap = obs::trace::snapshot();
    ASSERT_EQ(snap.nodes.size(), 6u);
    ASSERT_EQ(snap.roots.size(), 1u);
    EXPECT_FALSE(snap.has_wall);
    const auto& root = snap.nodes[snap.roots[0]];
    EXPECT_EQ(root.name, "root");
    EXPECT_EQ(root.tick_total, 11u);
    EXPECT_EQ(root.tick_self, 3u); // 1 + two children
    // Self-times partition the root total exactly.
    std::uint64_t self_sum = 0;
    for (const auto& n : snap.nodes) self_sum += n.tick_self;
    EXPECT_EQ(self_sum, root.tick_total);
}

TEST(TraceSnapshot, CriticalPathDescendsHeaviestWithLexTieBreak) {
    ObsGuard guard(obs::Mode::Trace);
    record_hand_tree();
    const auto snap = obs::trace::snapshot();
    const auto path = obs::trace::critical_path(snap);
    ASSERT_EQ(path.size(), 3u);
    EXPECT_EQ(snap.nodes[path[0]].name, "root");
    EXPECT_EQ(snap.nodes[path[1]].name, "a"); // total 5 beats b's 3
    // a1 and a2 tie at total 1; the lexicographically smaller keyed path
    // wins.
    EXPECT_EQ(snap.nodes[path[2]].name, "a1");
    EXPECT_EQ(obs::trace::critical_path_text(snap),
              "critical path [tick]: total=11\n"
              "  root:0  total=11  self=3\n"
              "  root:0/a:0  total=5  self=3\n"
              "  root:0/a:0/a1:0  total=1  self=1\n");
}

TEST(TraceSnapshot, EmptySnapshotHasNoCriticalPath) {
    ObsGuard guard(obs::Mode::Trace);
    const auto snap = obs::trace::snapshot();
    EXPECT_TRUE(snap.empty());
    EXPECT_TRUE(obs::trace::critical_path(snap).empty());
    EXPECT_EQ(obs::trace::critical_path_text(snap), "critical path [tick]: (no spans)\n");
    EXPECT_EQ(obs::trace::export_folded(snap), "");
}

TEST(TraceSnapshot, FoldedStacksMergeByNameChain) {
    ObsGuard guard(obs::Mode::Trace);
    record_hand_tree();
    const auto snap = obs::trace::snapshot();
    EXPECT_EQ(obs::trace::export_folded(snap),
              "root 3\n"
              "root;a 3\n"
              "root;a;a1 1\n"
              "root;a;a2 1\n"
              "root;b 2\n"
              "root;b;b1 1\n");
}

TEST(TraceSnapshot, LatencyPercentilesAggregateByName) {
    ObsGuard guard(obs::Mode::Trace);
    record_hand_tree();
    const auto snap = obs::trace::snapshot();
    const auto lat = obs::trace::latency_percentiles(snap);
    // a1/a2/b1 all have tick total 1 — exact singleton-bucket percentiles.
    ASSERT_EQ(lat.count("a1"), 1u);
    EXPECT_EQ(lat.at("a1").p50, 1u);
    EXPECT_EQ(lat.at("root").count, 1u);
    for (const auto& [name, p] : lat) {
        EXPECT_LE(p.p50, p.p95) << name;
        EXPECT_LE(p.p95, p.p99) << name;
    }
}

// ---------------------------------------------------------------------------
// Determinism across worker counts

/// A two-level fan-out whose trace must not depend on scheduling.
void fan_out_workload() {
    std::atomic<std::uint64_t> sink{0};
    obs::Span top("work");
    util::parallel_for(8, [&](std::size_t i) {
        std::uint64_t acc = i;
        for (int r = 0; r < 200; ++r) acc = acc * 6364136223846793005ull + 1442695040888963407ull;
        sink += acc;
        obs::count("work.items");
    });
}

TEST(TraceDeterminism, AnalysesAreByteIdenticalAcrossWorkerCounts) {
    std::string first_critical;
    std::string first_folded;
    std::string first_profile;
    for (const std::size_t threads : {1u, 2u, 8u}) {
        ObsGuard guard(obs::Mode::Trace);
        util::set_num_threads(threads);
        fan_out_workload();
        const auto snap = obs::trace::snapshot();
        const std::string critical = obs::trace::critical_path_text(snap);
        const std::string folded = obs::trace::export_folded(snap);
        const std::string profile =
            obs::trace::profile_json(obs::trace::profile(snap));
        if (first_critical.empty()) {
            first_critical = critical;
            first_folded = folded;
            first_profile = profile;
        } else {
            EXPECT_EQ(critical, first_critical) << "threads=" << threads;
            EXPECT_EQ(folded, first_folded) << "threads=" << threads;
            EXPECT_EQ(profile, first_profile) << "threads=" << threads;
        }
    }
}

// ---------------------------------------------------------------------------
// Profile interchange

TEST(TraceProfile, JsonRoundTripIsLossless) {
    ObsGuard guard(obs::Mode::Trace);
    record_hand_tree();
    const auto snap = obs::trace::snapshot();
    const auto prof = obs::trace::profile(snap);
    EXPECT_EQ(prof.root_tick, 11u);
    EXPECT_EQ(prof.by_name.at("root").max_fanout, 2u);
    const std::string js = obs::trace::profile_json(prof);
    obs::trace::Profile back;
    std::string err;
    ASSERT_TRUE(obs::trace::parse_profile(js, back, &err)) << err;
    EXPECT_EQ(obs::trace::profile_json(back), js);
    EXPECT_EQ(back.by_name.size(), prof.by_name.size());
    EXPECT_EQ(back.critical.size(), prof.critical.size());
    EXPECT_EQ(back.root_tick, prof.root_tick);
}

TEST(TraceProfile, ParseRejectsNonProfiles) {
    obs::trace::Profile out;
    std::string err;
    EXPECT_FALSE(obs::trace::parse_profile("{\"metrics\": {}}", out, &err));
    EXPECT_NE(err.find("si_trace_profile"), std::string::npos);
    EXPECT_FALSE(obs::trace::parse_profile("not json", out, &err));
}

// ---------------------------------------------------------------------------
// Wall lane

TEST(TraceWallLane, OptInRecordsNanosecondsUnderDeterministicClock) {
    ObsGuard guard(obs::Mode::Trace);
    obs::set_wall_lane(true);
    EXPECT_TRUE(obs::wall_lane());
    record_hand_tree();
    const auto snap = obs::trace::snapshot();
    EXPECT_TRUE(snap.has_wall);
    for (const auto& n : snap.nodes) {
        EXPECT_LE(n.wall_self, n.wall_total) << n.path;
        // The tick lane is unaffected by the wall lane.
        EXPECT_GE(n.tick_self, 1u);
    }
}

TEST(TraceWallLane, OffByDefault) {
    ObsGuard guard(obs::Mode::Trace);
    record_hand_tree();
    EXPECT_FALSE(obs::trace::snapshot().has_wall);
}

// ---------------------------------------------------------------------------
// Request-scoped contexts

TEST(TraceRequest, InactiveByDefault) {
    const auto req = obs::current_request();
    EXPECT_FALSE(req.active);
    EXPECT_EQ(req.id, 0u);
}

TEST(TraceRequest, ScopeInstallsAndRestoresIdentity) {
    ObsGuard guard(obs::Mode::Off);
    {
        obs::RequestScope scope(42, 7);
        const auto req = obs::current_request();
        EXPECT_TRUE(req.active);
        EXPECT_EQ(req.id, 42u);
        EXPECT_EQ(req.seed, 7u);
        {
            obs::RequestScope inner(43, 8);
            EXPECT_EQ(obs::current_request().id, 43u);
        }
        EXPECT_EQ(obs::current_request().id, 42u);
    }
    EXPECT_FALSE(obs::current_request().active);
}

TEST(TraceRequest, IdentityPropagatesThroughPoolFanOut) {
    ObsGuard guard(obs::Mode::Off);
    util::set_num_threads(4);
    obs::RequestScope scope(42, 7);
    std::atomic<int> wrong{0};
    util::parallel_for(16, [&](std::size_t) {
        const auto req = obs::current_request();
        if (!req.active || req.id != 42 || req.seed != 7) ++wrong;
    });
    EXPECT_EQ(wrong.load(), 0);
}

TEST(TraceRequest, TracedFanOutStampsRequestOnSpans) {
    ObsGuard guard(obs::Mode::Trace);
    util::set_num_threads(2);
    {
        obs::RequestScope scope(42, 7);
        util::parallel_for(3, [&](std::size_t) {});
    }
    const auto snap = obs::trace::snapshot();
    ASSERT_EQ(snap.roots.size(), 1u);
    const auto& root = snap.nodes[snap.roots[0]];
    EXPECT_EQ(root.name, "request");
    // The request span carries its identity as attributes...
    bool has_req_attr = false;
    for (const auto& [k, v] : root.attrs)
        if (k == "req") {
            has_req_attr = true;
            EXPECT_EQ(v, "42");
        }
    EXPECT_TRUE(has_req_attr);
    // ...and every descendant (the fan-out and its tasks) is attributed
    // to it via Node::request.
    std::size_t tasks = 0;
    for (const auto& n : snap.nodes) {
        if (&n != &root) {
            EXPECT_EQ(n.request, "42") << n.path;
        }
        if (n.name == "task") ++tasks;
    }
    EXPECT_EQ(tasks, 3u);
}

TEST(TraceRequest, ContextDerivesSeedsLikeGen) {
    // util::RequestContext::derive_seed must stay byte-identical to
    // si::gen::derive_seed — request streams and campaign case streams
    // are the same discipline.
    for (const std::uint64_t seed : {0ull, 1ull, 42ull, 0xdeadbeefull}) {
        for (const std::uint64_t id : {0ull, 1ull, 7ull, 1000003ull}) {
            EXPECT_EQ(util::RequestContext::derive_seed(seed, id), gen::derive_seed(seed, id))
                << seed << "," << id;
        }
    }
    const auto ctx = util::RequestContext::make(42, 7);
    EXPECT_EQ(ctx.id, 7u);
    EXPECT_EQ(ctx.seed, gen::derive_seed(42, 7));
    EXPECT_TRUE(ctx.info().active);
}

TEST(TraceRequest, ContextShardsParentBudget) {
    util::Budget parent;
    parent.cap(util::Resource::States, 100);
    const auto ctx = util::RequestContext::make(1, 2, &parent, 4);
    EXPECT_EQ(ctx.budget.limit(util::Resource::States), 25u);
}

// ---------------------------------------------------------------------------
// Stage latency rendering (report layer)

TEST(TraceReport, ExplainLatencyBlocksRender) {
    obs::report::StageLatency lat;
    lat["mc.check"] = {1, 3, 7, 11};
    // The text block is name-sorted and carries all three percentiles.
    const std::string vtext = "stage latency [ticks]:\n  mc.check: p50=1 p95=3 p99=7 (n=11)\n";
    // Rendered through the public renderers on a trivial netlist/result.
    net::Netlist nl{SignalTable{}};
    nl.name = "t";
    verify::VerifyResult res;
    res.ok = true;
    const std::string text = obs::report::verify_explain_text(nl, res, &lat);
    EXPECT_NE(text.find(vtext), std::string::npos);
    const std::string js = obs::report::verify_explain_json(nl, res, &lat);
    EXPECT_NE(js.find("\"stage_latency\""), std::string::npos);
    EXPECT_NE(js.find("\"p95\": 3"), std::string::npos);
    // Null or empty latency adds nothing.
    EXPECT_EQ(obs::report::verify_explain_text(nl, res).find("stage latency"), std::string::npos);
}

TEST(TraceReport, DiffResultToJsonIsMachineReadable) {
    obs::report::Snapshot base;
    obs::report::Snapshot cur;
    base.counters["a"] = 10;
    cur.counters["a"] = 100;
    base.counters["gone"] = 1;
    cur.counters["new"] = 1;
    const auto diff = obs::report::diff_snapshots(base, cur);
    EXPECT_TRUE(diff.regressed());
    const std::string js = diff.to_json();
    EXPECT_NE(js.find("\"obs_diff\": 1"), std::string::npos);
    EXPECT_NE(js.find("\"regressed\": true"), std::string::npos);
    EXPECT_NE(js.find("{\"name\": \"a\", \"base\": 10, \"cur\": 100"), std::string::npos);
    EXPECT_NE(js.find("\"missing\": [\"gone\"]"), std::string::npos);
    EXPECT_NE(js.find("\"added\": [\"new\"]"), std::string::npos);
}

} // namespace
} // namespace si
