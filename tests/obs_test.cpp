// Unit tests for si::obs: span nesting and canonical merge, metric
// sharding, the disabled-mode fast path, exporters, the overwrite
// refusal, and the Meter::why() "not exhausted" contract.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <limits>
#include <string>

#include "si/netlist/builder.hpp"
#include "si/obs/flight.hpp"
#include "si/obs/obs.hpp"
#include "si/sg/read_sg.hpp"
#include "si/util/budget.hpp"
#include "si/util/parallel.hpp"
#include "si/verify/fault.hpp"
#include "si/verify/verifier.hpp"

namespace si {
namespace {

/// Every test runs with a clean registry and leaves obs off.
struct ObsGuard {
    explicit ObsGuard(obs::Mode m) {
        obs::set_mode(m);
        obs::reset();
    }
    ~ObsGuard() {
        util::set_num_threads(0);
        obs::set_mode(obs::Mode::Off);
        obs::reset();
    }
};

TEST(Obs, SpanNestingProducesIndentedTree) {
    ObsGuard guard(obs::Mode::Trace);
    {
        obs::Span outer("outer");
        outer.attr("k", "v");
        {
            obs::Span inner("inner");
            EXPECT_EQ(obs::current_span_path(), "outer/inner");
        }
        obs::Span sibling("sibling");
    }
    EXPECT_EQ(obs::current_span_path(), "");
    const std::string tree = obs::trace_tree();
    // Deterministic clock: DFS tick intervals, children indented under
    // their parent, siblings in creation order.
    EXPECT_EQ(tree,
              "outer k=v [0..5]\n"
              "  inner [1..2]\n"
              "  sibling [3..4]\n");
}

TEST(Obs, ChromeExportBalancedAndEscaped) {
    ObsGuard guard(obs::Mode::Trace);
    {
        obs::Span s("stage");
        s.attr("msg", "quote\" and \\slash");
        obs::Span child("child");
    }
    const std::string json = obs::trace_chrome_json();
    std::size_t begins = 0, ends = 0, pos = 0;
    while ((pos = json.find("\"ph\":\"B\"", pos)) != std::string::npos) ++begins, pos += 8;
    pos = 0;
    while ((pos = json.find("\"ph\":\"E\"", pos)) != std::string::npos) ++ends, pos += 8;
    EXPECT_EQ(begins, 2u);
    EXPECT_EQ(ends, 2u);
    EXPECT_NE(json.find("quote\\\" and \\\\slash"), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(Obs, FanOutMergeIsCanonicalAcrossThreadCounts) {
    ObsGuard guard(obs::Mode::Trace);
    const auto traced_fan_out = [] {
        obs::reset();
        obs::Span root("root");
        util::parallel_for(6, [](std::size_t i) {
            obs::Span work("work");
            work.attr("i", static_cast<std::uint64_t>(i));
        });
        return std::pair{obs::trace_tree(), obs::trace_chrome_json()};
    };
    util::set_num_threads(1);
    const auto serial = traced_fan_out();
    // Tasks appear as index-keyed children of the fan-out span.
    EXPECT_NE(serial.first.find("parallel"), std::string::npos);
    EXPECT_NE(serial.first.find("i=5"), std::string::npos);
    for (const std::size_t t : {2u, 8u}) {
        util::set_num_threads(t);
        EXPECT_EQ(traced_fan_out(), serial) << "thread count " << t;
    }
}

TEST(Obs, MetricsMergeAcrossThreads) {
    ObsGuard guard(obs::Mode::Metrics);
    util::set_num_threads(4);
    util::parallel_for(16, [](std::size_t i) {
        obs::count("test.events");
        obs::gauge_max("test.peak", i);
        obs::observe("test.size", i + 1);
    });
    const std::string text = obs::metrics_text(false);
    EXPECT_NE(text.find("counter test.events = 16"), std::string::npos);
    EXPECT_NE(text.find("gauge test.peak max = 15"), std::string::npos);
    EXPECT_NE(text.find("hist test.size count=16 sum=136"), std::string::npos);
}

TEST(Obs, DiagMetricsExcludedFromDeterministicExport) {
    ObsGuard guard(obs::Mode::Metrics);
    obs::count("test.stable", 1, obs::Tag::Stable);
    obs::count("test.diag", 1, obs::Tag::Diag);
    const std::string deterministic = obs::metrics_text(false);
    EXPECT_NE(deterministic.find("test.stable"), std::string::npos);
    EXPECT_EQ(deterministic.find("test.diag"), std::string::npos);
    const std::string full = obs::metrics_text(true);
    EXPECT_NE(full.find("# diagnostic"), std::string::npos);
    EXPECT_NE(full.find("test.diag"), std::string::npos);
    // metrics_brief carries only the Stable counters.
    EXPECT_EQ(obs::metrics_brief(), "test.stable=1");
}

TEST(Obs, DisabledModeRecordsNothing) {
    ObsGuard guard(obs::Mode::Off);
    {
        obs::Span s("stage");
        s.attr("k", "v");
        obs::count("test.events", 3);
        obs::observe("test.size", 7);
        obs::hot(obs::Hot::ExcitedIndexHit);
        EXPECT_EQ(obs::current_span_path(), "");
    }
    EXPECT_EQ(obs::trace_tree(), "");
    EXPECT_EQ(obs::metrics_text(true), "");
    EXPECT_EQ(obs::metrics_brief(), "");
}

TEST(Obs, MetricsModeRecordsNoSpans) {
    ObsGuard guard(obs::Mode::Metrics);
    {
        obs::Span s("stage");
        obs::count("test.events");
    }
    EXPECT_EQ(obs::trace_tree(), "");
    EXPECT_NE(obs::metrics_text(false).find("test.events"), std::string::npos);
}

TEST(Obs, ExportToFileRefusesOverwriteWithoutForce) {
    ObsGuard guard(obs::Mode::Metrics);
    obs::count("test.events");
    const std::string path = ::testing::TempDir() + "obs_test_export.txt";
    std::remove(path.c_str());
    EXPECT_EQ(obs::export_to_file(path, false), "");
    const std::string err = obs::export_to_file(path, false);
    EXPECT_NE(err.find("refusing to overwrite"), std::string::npos);
    EXPECT_NE(err.find("--force"), std::string::npos);
    EXPECT_EQ(obs::export_to_file(path, true), "");
    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "counter test.events = 1");
    std::remove(path.c_str());
}

TEST(Obs, ResetClearsEverything) {
    ObsGuard guard(obs::Mode::Trace);
    {
        obs::Span s("stage");
        obs::count("test.events");
        obs::hot(obs::Hot::ArcOnIndexHit);
    }
    EXPECT_NE(obs::trace_tree(), "");
    obs::reset();
    EXPECT_EQ(obs::trace_tree(), "");
    EXPECT_EQ(obs::metrics_text(true), "");
}

TEST(Obs, MeterWhyNeverAborts) {
    // A meter whose budgets never tripped still answers why(): the
    // structured "not exhausted" outcome, not an abort.
    util::Meter idle("test.stage", nullptr);
    EXPECT_FALSE(idle.exhausted());
    const util::Exhaustion& why = idle.why();
    EXPECT_FALSE(why.tripped);
    EXPECT_EQ(why.describe(), "budget not exhausted");
    EXPECT_EQ(idle.stage_path(), "test.stage");
}

TEST(Obs, MeterWhyReportsTripWithMetricsSnapshot) {
    ObsGuard guard(obs::Mode::Metrics);
    obs::count("test.before_trip", 2);
    util::Meter meter("test.stage", nullptr);
    meter.local().cap(util::Resource::Steps, 1);
    EXPECT_TRUE(meter.charge(util::Resource::Steps));
    EXPECT_FALSE(meter.charge(util::Resource::Steps));
    const util::Exhaustion& why = meter.why();
    EXPECT_TRUE(why.tripped);
    EXPECT_EQ(why.stage, "test.stage");
    EXPECT_EQ(why.resource, util::Resource::Steps);
    // The trip captured the Stable-counter snapshot for attribution.
    EXPECT_NE(why.metrics.find("test.before_trip=2"), std::string::npos);
}

sg::StateGraph handshake() {
    return sg::read_sg(R"(
.model hs
.inputs r
.outputs a
.arcs
00 r+ 10
10 a+ 11
11 r- 01
01 a- 00
.initial 00
.end
)");
}

TEST(Obs, ViolationCarriesSpanPathProvenance) {
    ObsGuard guard(obs::Mode::Trace);
    const auto g = handshake();
    net::Netlist nl(g.signals());
    const GateId in = nl.add_gate(net::GateKind::Input, "r", {}, g.signals().find("r"));
    nl.add_gate(net::GateKind::Not, "a", {{in, false}}, g.signals().find("a"));
    const auto result = verify::verify_speed_independence(nl, g);
    ASSERT_FALSE(result.ok);
    ASSERT_FALSE(result.violations.empty());
    EXPECT_EQ(result.violations.front().span_path, "verify.explore");
    // The serialized witness includes the provenance line. (The firing
    // sequence rides alongside in `trace` — empty here only because this
    // violation is at the reset state itself.)
    EXPECT_NE(result.violations.front().describe().find("found in: verify.explore"),
              std::string::npos);
}

TEST(Obs, FaultInjectionsCarrySpanPathProvenance) {
    ObsGuard guard(obs::Mode::Trace);
    const auto g = handshake();
    net::Netlist nl(g.signals());
    const GateId in = nl.add_gate(net::GateKind::Input, "r", {}, g.signals().find("r"));
    nl.add_gate(net::GateKind::Wire, "a", {{in, false}}, g.signals().find("a"));
    ASSERT_TRUE(verify::verify_speed_independence(nl, g).ok);

    const auto injections = verify::fault::inject_glitches(nl, g);
    ASSERT_FALSE(injections.empty());
    bool saw_killed = false;
    for (const auto& inj : injections) {
        // Killed or survived, every injection names the span it ran in.
        EXPECT_NE(inj.span_path.find("fault.inject"), std::string::npos) << inj.detail;
        saw_killed = saw_killed || inj.killed;
    }
    EXPECT_TRUE(saw_killed);
}

TEST(Obs, BudgetTripCountsExhaustions) {
    ObsGuard guard(obs::Mode::Metrics);
    util::Budget b;
    b.cap(util::Resource::States, 1);
    EXPECT_TRUE(b.charge(util::Resource::States));
    EXPECT_FALSE(b.charge(util::Resource::States));
    EXPECT_NE(obs::metrics_text(false).find("counter budget.exhaustions = 1"),
              std::string::npos);
}

TEST(Obs, ChromeExportEscapesSpanAndAttributeNames) {
    ObsGuard guard(obs::Mode::Trace);
    {
        // Hostile span name and attribute key: quote, backslash, newline,
        // tab and a raw control byte, all of which must be escaped for
        // the export to stay loadable JSON.
        obs::Span s("sp\"an\\x\nname");
        s.attr("ke\"y\t1", std::string("va\\l\x01ue"));
    }
    const std::string json = obs::trace_chrome_json();
    EXPECT_NE(json.find("\"name\":\"sp\\\"an\\\\x\\nname\""), std::string::npos);
    EXPECT_NE(json.find("\"ke\\\"y\\t1\":\"va\\\\l\\u0001ue\""), std::string::npos);
    // No raw control characters survive inside the event records (the
    // exporter's own newline separators are the only bytes below 0x20).
    std::size_t raw_controls = 0;
    for (const char c : json)
        if (static_cast<unsigned char>(c) < 0x20 && c != '\n') ++raw_controls;
    EXPECT_EQ(raw_controls, 0u);
}

TEST(Obs, HistogramZeroAndMaxBuckets) {
    ObsGuard guard(obs::Mode::Metrics);
    obs::observe("test.edge", 0);                                  // bit_width(0) = 0
    obs::observe("test.edge", std::numeric_limits<std::uint64_t>::max()); // bit_width = 64
    const std::string text = obs::metrics_text(false);
    EXPECT_NE(text.find("hist test.edge count=2"), std::string::npos);
    EXPECT_NE(text.find("2^0:1"), std::string::npos);
    EXPECT_NE(text.find("2^64:1"), std::string::npos);
}

TEST(Obs, HistogramMergeSingleVsMultiShard) {
    ObsGuard guard(obs::Mode::Metrics);
    const auto run = [](std::size_t threads) {
        obs::reset();
        util::set_num_threads(threads);
        util::parallel_for(32, [](std::size_t i) { obs::observe("test.merge", i); });
        return obs::metrics_text(false);
    };
    const std::string serial = run(1); // one shard holds the whole histogram
    EXPECT_EQ(run(8), serial);         // merged shards must render identically
    EXPECT_NE(serial.find("hist test.merge count=32 sum=496"), std::string::npos);
}

TEST(Obs, UnrecognizedSiObsValueWarnsOnceAndStaysOff) {
    obs::set_mode(obs::Mode::Off);
    ::setenv("SI_OBS", "bogus-mode", 1);
    // Force the one-time env read to re-run.
    obs::detail::g_mode.store(255);
    ::testing::internal::CaptureStderr();
    EXPECT_EQ(obs::mode(), obs::Mode::Off);
    EXPECT_EQ(obs::mode(), obs::Mode::Off); // second read: no second warning
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("unrecognized SI_OBS value 'bogus-mode'"), std::string::npos);
    EXPECT_EQ(err.find("unrecognized", err.find("unrecognized") + 1), std::string::npos);
    ::unsetenv("SI_OBS");
    obs::set_mode(obs::Mode::Off);
}

TEST(Obs, MetricsJsonRendersStableCounters) {
    ObsGuard guard(obs::Mode::Metrics);
    obs::count("test.alpha", 3);
    obs::count("test.beta", 7);
    obs::count("test.diag", 1, obs::Tag::Diag);    // excluded
    obs::gauge_max("test.gauge", 9);               // not a counter: excluded
    EXPECT_EQ(obs::metrics_json(), "{\"test.alpha\": 3, \"test.beta\": 7}");
}

TEST(ObsFlight, DisarmedByDefaultAndRenderWorks) {
    ObsGuard guard(obs::Mode::Off);
    ASSERT_TRUE(obs::flight::dir().empty());
    obs::flight::note("dropped"); // no-op while disarmed
    const std::string doc = obs::flight::render("unit");
    EXPECT_NE(doc.find("\"flight\": 1"), std::string::npos);
    EXPECT_NE(doc.find("\"reason\": \"unit\""), std::string::npos);
    EXPECT_EQ(doc.find("dropped"), std::string::npos);
    EXPECT_NE(obs::flight::dump("unit").find("disarmed"), std::string::npos);
}

TEST(ObsFlight, DumpWritesSanitizedReasonAndResetClears) {
    ObsGuard guard(obs::Mode::Off);
    const std::string dir = ::testing::TempDir() + "obs_flight_test";
    obs::flight::set_dir(dir);
    ASSERT_TRUE(obs::flight::armed());
    obs::flight::note("first breadcrumb");
    ASSERT_TRUE(obs::flight::dump("weird/../reason !").empty());
    std::ifstream in(dir + "/flight-weird----reason--.json");
    ASSERT_TRUE(in.good()) << "reason was not sanitized into the expected filename";
    std::string doc((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    EXPECT_NE(doc.find("first breadcrumb"), std::string::npos);
    EXPECT_NE(doc.find("\"kind\": \"N\""), std::string::npos);

    obs::flight::reset();
    EXPECT_EQ(obs::flight::render("unit").find("first breadcrumb"), std::string::npos);
    obs::flight::set_dir("");
    EXPECT_FALSE(obs::flight::armed());
}

TEST(ObsFlight, SpanEventsRecordKeyedPathsDeterministically) {
    ObsGuard flight_guard(obs::Mode::Trace);
    const std::string dir = ::testing::TempDir() + "obs_flight_det";
    const auto run = [&](std::size_t threads) {
        obs::reset(); // clears the ring too
        obs::flight::set_dir(dir);
        util::set_num_threads(threads);
        {
            obs::Span root("root");
            util::parallel_for(4, [](std::size_t i) {
                obs::Span work("work");
                obs::flight::note("task " + std::to_string(i));
            });
        }
        return obs::flight::render("unit");
    };
    const std::string serial = run(1);
    // Keyed task paths make concurrent tasks distinct, so the canonical
    // (path, seq) sort is thread-count independent.
    EXPECT_NE(serial.find("root:0/parallel:0/task:2/work:0"), std::string::npos);
    EXPECT_EQ(run(2), serial);
    EXPECT_EQ(run(8), serial);
    obs::flight::set_dir("");
}

} // namespace
} // namespace si
