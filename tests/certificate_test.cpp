// Proof-certificate extraction and independent re-validation.
#include <gtest/gtest.h>

#include "si/bench_stgs/figures.hpp"
#include "si/bench_stgs/table1.hpp"
#include "si/mc/certificate.hpp"
#include "si/sg/from_stg.hpp"
#include "si/sg/regions.hpp"
#include "si/synth/synthesize.hpp"
#include "si/util/error.hpp"

namespace si::mc {
namespace {

TEST(Certificate, Figure3CertifiesAndChecks) {
    const auto g = bench::figure3();
    const sg::RegionAnalysis ra(g);
    const auto report = check_requirement(ra);
    ASSERT_TRUE(report.satisfied());
    const auto cert = make_certificate(ra, report);
    EXPECT_EQ(cert.num_states, 17u);
    EXPECT_FALSE(cert.to_text(g.signals()).empty());
    const auto check = check_certificate(g, cert);
    EXPECT_TRUE(check.ok) << check.reason;
}

TEST(Certificate, EveryTable1ResultCertifies) {
    for (const auto& e : bench::table1_suite()) {
        const auto spec = sg::build_state_graph(bench::load(e));
        const auto res = synth::synthesize(spec);
        const sg::RegionAnalysis ra(res.graph);
        const auto cert = make_certificate(ra, res.mc);
        const auto check = check_certificate(res.graph, cert);
        EXPECT_TRUE(check.ok) << e.name << ": " << check.reason;
    }
}

TEST(Certificate, WrongGraphRejected) {
    const auto g3 = bench::figure3();
    const sg::RegionAnalysis ra(g3);
    const auto cert = make_certificate(ra, check_requirement(ra));
    const auto check = check_certificate(bench::figure1(), cert);
    ASSERT_FALSE(check.ok);
    EXPECT_NE(check.reason.find("fingerprint"), std::string::npos);
}

TEST(Certificate, TamperedCubeRejected) {
    const auto g = bench::figure3();
    const sg::RegionAnalysis ra(g);
    auto cert = make_certificate(ra, check_requirement(ra));
    // Flip one literal of the first cube-bearing claim.
    for (auto& claim : cert.claims) {
        if (!claim.cube) continue;
        for (std::size_t v = 0; v < claim.cube->num_vars(); ++v) {
            const Lit l = claim.cube->lit(SignalId(v));
            if (l == Lit::Dash) continue;
            claim.cube->set_lit(SignalId(v), l == Lit::One ? Lit::Zero : Lit::One);
            break;
        }
        break;
    }
    EXPECT_FALSE(check_certificate(g, cert).ok);
}

TEST(Certificate, MissingClaimRejected) {
    const auto g = bench::figure3();
    const sg::RegionAnalysis ra(g);
    auto cert = make_certificate(ra, check_requirement(ra));
    cert.claims.pop_back();
    const auto check = check_certificate(g, cert);
    ASSERT_FALSE(check.ok);
    EXPECT_NE(check.reason.find("no claim"), std::string::npos);
}

TEST(Certificate, UnsatisfiedReportRejected) {
    const auto g = bench::figure1();
    const sg::RegionAnalysis ra(g);
    const auto report = check_requirement(ra);
    ASSERT_FALSE(report.satisfied());
    EXPECT_THROW((void)make_certificate(ra, report), InternalError);
}

} // namespace
} // namespace si::mc
