// STG parallel composition (pcomp-style) and end-to-end system checks:
// two separately synthesized stages compose into a closed system whose
// joint behaviour unfolds, classifies and verifies.
#include <gtest/gtest.h>

#include "si/sg/analysis.hpp"
#include "si/sg/from_stg.hpp"
#include "si/stg/compose.hpp"
#include "si/stg/dot.hpp"
#include "si/stg/parse.hpp"
#include "si/stg/structure.hpp"
#include "si/synth/synthesize.hpp"
#include "si/util/error.hpp"

namespace si::stg {
namespace {

// Left stage: environment handshake (l/la) triggers the link handshake
// (m/ma). Right stage: the link handshake drives the output handshake
// (r/ra). They share m and ma with opposite roles.
Stg left_stage() {
    return read_g(R"(
.model left
.inputs l ma
.outputs la m
.graph
l+ m+
m+ ma+
ma+ la+
la+ l-
l- m-
m- ma-
ma- la-
la- l+
.marking { <la-,l+> }
.end
)");
}

Stg right_stage() {
    return read_g(R"(
.model right
.inputs m ra
.outputs ma r
.graph
m+ r+
r+ ra+
ra+ ma+
ma+ m-
m- r-
r- ra-
ra- ma-
ma- m+
.marking { <ma-,m+> }
.end
)");
}

TEST(Compose, TwoStagesSynchronizeOnTheLink) {
    const Stg sys = compose(left_stage(), right_stage());
    // m and ma are closed (internalized); l/la/r/ra remain the interface.
    EXPECT_EQ(sys.signals()[sys.signals().find("m")].kind, SignalKind::Internal);
    EXPECT_EQ(sys.signals()[sys.signals().find("ma")].kind, SignalKind::Internal);
    EXPECT_EQ(sys.signals()[sys.signals().find("l")].kind, SignalKind::Input);
    EXPECT_EQ(sys.signals()[sys.signals().find("la")].kind, SignalKind::Output);
    EXPECT_EQ(sys.signals()[sys.signals().find("r")].kind, SignalKind::Output);
    // Shared transitions merged: 8 + 8 - 4 = 12 transitions.
    EXPECT_EQ(sys.num_transitions(), 12u);

    const auto report = analyze_structure(sys);
    EXPECT_TRUE(report.safe);
    EXPECT_TRUE(report.live) << report.offender;

    const auto g = sg::build_state_graph(sys);
    EXPECT_TRUE(sg::is_output_semimodular(g));
}

TEST(Compose, ComposedSystemSynthesizesAndVerifies) {
    const Stg sys = compose(left_stage(), right_stage());
    const auto g = sg::build_state_graph(sys);
    synth::SynthOptions opts;
    opts.verify_result = true;
    const auto res = synth::synthesize(g, opts);
    EXPECT_TRUE(res.verification.ok) << res.verification.describe();
}

TEST(Compose, KeepSharedSignalsVisible) {
    ComposeOptions opts;
    opts.internalize_shared = false;
    const Stg sys = compose(left_stage(), right_stage(), opts);
    EXPECT_EQ(sys.signals()[sys.signals().find("m")].kind, SignalKind::Output);
}

TEST(Compose, RejectsTwoDrivers) {
    // Both sides declare m as an output.
    Stg bad = right_stage();
    // Rebuild right with m as output too: easiest is a tiny net.
    const Stg other = read_g(R"(
.model other
.inputs x
.outputs m
.graph
x+ m+
m+ x-
x- m-
m- x+
.marking { <m-,x+> }
.end
)");
    const Stg left_driver = read_g(R"(
.model leftd
.inputs y
.outputs m
.graph
y+ m+
m+ y-
y- m-
m- y+
.marking { <m-,y+> }
.end
)");
    EXPECT_THROW((void)compose(left_driver, other), SpecError);
    (void)bad;
}

TEST(Compose, RejectsSharedInternalSignals) {
    const Stg internal_side = read_g(R"(
.model internal
.inputs x
.internal m
.graph
x+ m+
m+ x-
x- m-
m- x+
.marking { <m-,x+> }
.end
)");
    EXPECT_THROW((void)compose(internal_side, right_stage()), SpecError);
}

TEST(Compose, RejectsPartialSynchronization) {
    // Left has m+/m- once; a variant of right with m toggling twice
    // cannot synchronize instance 2.
    const Stg double_m = read_g(R"(
.model doublem
.inputs m
.outputs z
.graph
m+ z+
z+ m-
m- m+/2
m+/2 z-
z- m-/2
m-/2 m+
.marking { <m-/2,m+> }
.end
)");
    EXPECT_THROW((void)compose(left_stage(), double_m), SpecError);
}

TEST(Compose, MinimizedSynthesisMatches) {
    const stg::Stg sys = compose(left_stage(), right_stage());
    const auto g = sg::build_state_graph(sys);
    synth::SynthOptions opts;
    opts.minimize_graph = true;
    opts.verify_result = true;
    const auto res = synth::synthesize(g, opts);
    EXPECT_TRUE(res.verification.ok) << res.verification.describe();
}

TEST(Compose, StgDotRendering) {
    const stg::Stg sys = compose(left_stage(), right_stage());
    const std::string dot = to_dot(sys);
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("shape=box"), std::string::npos);
    EXPECT_NE(dot.find("m+"), std::string::npos);
    // Marked implicit places appear as bold starred edges.
    EXPECT_NE(dot.find("label=\"*\""), std::string::npos);
}

TEST(Compose, DisjointNetsJustInterleave) {
    const Stg hs1 = read_g(R"(
.model hs1
.inputs p
.outputs q
.graph
p+ q+
q+ p-
p- q-
q- p+
.marking { <q-,p+> }
.end
)");
    const Stg hs2 = read_g(R"(
.model hs2
.inputs u
.outputs v
.graph
u+ v+
v+ u-
u- v-
v- u+
.marking { <v-,u+> }
.end
)");
    const Stg sys = compose(hs1, hs2);
    const auto g = sg::build_state_graph(sys);
    EXPECT_EQ(g.num_states(), 16u); // 4 x 4 independent product
}

} // namespace
} // namespace si::stg
