// ThreadPool / parallel fan-out tests: every index runs exactly once for
// any worker count, results come back in input order, the lowest failing
// index's exception wins deterministically, nested fan-outs run inline,
// and budget shards make exhaustion mid-fan-out reproducible.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "si/util/budget.hpp"
#include "si/util/parallel.hpp"

namespace si {
namespace {

using util::Budget;
using util::Resource;

// Restores the global knobs no matter how a test exits.
struct KnobGuard {
    ~KnobGuard() {
        util::set_num_threads(0);
        util::set_fast_path(true);
    }
};

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
    KnobGuard guard;
    for (const std::size_t t : {1u, 2u, 8u}) {
        util::set_num_threads(t);
        std::vector<std::atomic<int>> counts(100);
        util::parallel_for(counts.size(), [&](std::size_t i) { ++counts[i]; });
        for (std::size_t i = 0; i < counts.size(); ++i) EXPECT_EQ(counts[i].load(), 1);
    }
}

TEST(ThreadPool, MapPreservesInputOrder) {
    KnobGuard guard;
    std::vector<int> items;
    for (int i = 0; i < 200; ++i) items.push_back(i);
    for (const std::size_t t : {1u, 8u}) {
        util::set_num_threads(t);
        const auto squares = util::parallel_map(items, [](int x) { return x * x; });
        ASSERT_EQ(squares.size(), items.size());
        for (int i = 0; i < 200; ++i) EXPECT_EQ(squares[i], i * i);
    }
}

TEST(ThreadPool, LowestFailingIndexWins) {
    KnobGuard guard;
    for (const std::size_t t : {1u, 8u}) {
        util::set_num_threads(t);
        try {
            util::parallel_for(64, [](std::size_t i) {
                if (i == 3 || i == 7 || i == 40)
                    throw std::runtime_error("task " + std::to_string(i));
            });
            FAIL() << "expected the fan-out to rethrow";
        } catch (const std::runtime_error& e) {
            // Deterministic even when a later index throws first.
            EXPECT_STREQ(e.what(), "task 3");
        }
    }
}

TEST(ThreadPool, NestedFanOutRunsInline) {
    KnobGuard guard;
    util::set_num_threads(4);
    std::atomic<int> total{0};
    util::parallel_for(8, [&](std::size_t) {
        // Reentrant fan-out from a pool task must not deadlock: it runs
        // inline on the calling worker.
        util::parallel_for(8, [&](std::size_t) { ++total; });
    });
    EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, ThreadCountKnobRoundTrips) {
    KnobGuard guard;
    util::set_num_threads(3);
    EXPECT_EQ(util::num_threads(), 3u);
    util::set_num_threads(0);
    EXPECT_GE(util::num_threads(), 1u); // hardware concurrency, at least 1
}

TEST(ThreadPool, FastPathKnobRoundTrips) {
    KnobGuard guard;
    EXPECT_TRUE(util::fast_path());
    util::set_fast_path(false);
    EXPECT_FALSE(util::fast_path());
    util::set_fast_path(true);
    EXPECT_TRUE(util::fast_path());
}

TEST(BudgetShard, CarriesRemainingHeadroomOnly) {
    Budget b;
    b.cap(Resource::Steps, 100);
    ASSERT_TRUE(b.charge(Resource::Steps, 40));
    const Budget s = b.shard();
    EXPECT_EQ(s.limit(Resource::Steps), 60u);
    EXPECT_EQ(s.consumed(Resource::Steps), 0u);
    EXPECT_EQ(s.limit(Resource::States), UINT64_MAX); // uncapped stays uncapped
}

TEST(BudgetShard, DividesHeadroomAcrossWays) {
    Budget b;
    b.cap(Resource::Steps, 100);
    ASSERT_TRUE(b.charge(Resource::Steps, 20));
    const Budget s = b.shard(8); // ceil(80 / 8) = 10 per shard
    EXPECT_EQ(s.limit(Resource::Steps), 10u);
    EXPECT_EQ(s.limit(Resource::States), UINT64_MAX); // uncapped stays uncapped
}

TEST(BudgetShard, FanOutCannotMultiplyTheCap) {
    // Every shard charging to its own limit must not let the merged total
    // reach n x the remaining headroom (the old full-headroom-per-shard
    // behaviour). With 1/n slices the total stays near the cap.
    const std::uint64_t cap = 100;
    const std::size_t n = 10;
    Budget b;
    b.cap(Resource::Steps, cap);
    std::vector<Budget> shards;
    for (std::size_t i = 0; i < n; ++i) shards.push_back(b.shard(n));
    for (auto& s : shards)
        while (s.charge(Resource::Steps)) {
        }
    for (auto& s : shards) b.absorb(s);
    // Each shard overshoots its slice by at most the one charge that
    // tripped it, so the merged total is bounded by cap + n, not n * cap.
    EXPECT_LE(b.consumed(Resource::Steps), cap + n);
    EXPECT_TRUE(b.exhausted());
}

TEST(BudgetShard, AbsorbSumsConsumptionAndTrips) {
    Budget b;
    b.cap(Resource::Steps, 10);
    Budget s1 = b.shard();
    Budget s2 = b.shard();
    EXPECT_TRUE(s1.charge(Resource::Steps, 6));
    EXPECT_TRUE(s2.charge(Resource::Steps, 6));
    b.absorb(s1);
    EXPECT_FALSE(b.exhausted());
    b.absorb(s2); // 12 > 10: the merged total trips the parent
    ASSERT_TRUE(b.exhausted());
    EXPECT_EQ(b.failure()->resource, Resource::Steps);
    EXPECT_EQ(b.consumed(Resource::Steps), 12u);
}

// ---------------------------------------------------------------------------
// Racing discipline (the portfolio protocol in si::synth): racers run on
// shard(K) slices; a deterministic winner commits only its stream-level
// cost to the parent and every shard is dropped without absorb; with no
// winner all shards are absorbed in task order.

TEST(BudgetRace, WinDropsAllShardsAndChargesOnlyTheStream) {
    Budget b;
    b.cap(Resource::Conflicts, 1000).cap(Resource::Attempts, 100);
    constexpr std::size_t kRacers = 4;
    std::vector<Budget> shards;
    for (std::size_t i = 0; i < kRacers; ++i) shards.push_back(b.shard(kRacers));
    // Every racer burns solver effort on its own slice (250 each)...
    for (auto& s : shards) ASSERT_TRUE(s.charge(Resource::Conflicts, 200));
    // ...and the winner re-charges only the canonical stream's attempt
    // count, which is identical for every possible winner.
    ASSERT_TRUE(b.charge(Resource::Attempts, 17));
    // Dropping the shards returns their headroom: no racer's Conflicts
    // reach the parent, so nothing is double-charged across the race.
    EXPECT_EQ(b.consumed(Resource::Conflicts), 0u);
    EXPECT_EQ(b.consumed(Resource::Attempts), 17u);
    EXPECT_FALSE(b.exhausted());
    // A later sequential stage still sees the full Conflicts headroom.
    EXPECT_TRUE(b.charge(Resource::Conflicts, 999));
}

TEST(BudgetRace, LoserExhaustionNeverReachesTheParentWithoutAbsorb) {
    Budget b;
    b.cap(Resource::Conflicts, 40);
    Budget loser = b.shard(2); // 20-conflict slice
    while (loser.charge(Resource::Conflicts)) {
    }
    ASSERT_TRUE(loser.exhausted());
    // absorb() is the only commit point: a cancelled loser's trip (a
    // wall-clock-dependent event) must leave the parent untouched.
    EXPECT_FALSE(b.exhausted());
    EXPECT_EQ(b.consumed(Resource::Conflicts), 0u);
}

TEST(BudgetRace, NoWinAbsorbsEveryShardInTaskOrder) {
    // When no racer completes, all shards are absorbed in task order so
    // the recorded exhaustion is a deterministic function of the racer
    // list, never of scheduling.
    std::string first_sig;
    for (int round = 0; round < 3; ++round) {
        Budget b;
        b.cap(Resource::Conflicts, 100);
        constexpr std::size_t kRacers = 4;
        std::vector<Budget> shards;
        for (std::size_t i = 0; i < kRacers; ++i) shards.push_back(b.shard(kRacers));
        // Each racer exhausts its own slice (ceil(100 / 4) = 25).
        for (auto& s : shards)
            while (s.charge(Resource::Conflicts)) {
            }
        for (const auto& s : shards) b.absorb(s);
        ASSERT_TRUE(b.exhausted());
        EXPECT_EQ(b.failure()->resource, Resource::Conflicts);
        const std::string sig = b.failure()->describe() + " consumed=" +
                                std::to_string(b.consumed(Resource::Conflicts));
        if (first_sig.empty())
            first_sig = sig;
        else
            EXPECT_EQ(sig, first_sig) << "round " << round;
    }
}

TEST(ThreadPool, BudgetExhaustionMidFanOutIsDeterministic) {
    KnobGuard guard;
    std::string first_sig;
    for (const std::size_t t : {1u, 2u, 8u}) {
        util::set_num_threads(t);
        Budget shared;
        shared.cap(Resource::Steps, 50);
        util::parallel_for_budget(&shared, 16, [&](std::size_t, Budget* shard) {
            ASSERT_NE(shard, nullptr);
            for (int j = 0; j < 10; ++j)
                if (!shard->charge(Resource::Steps)) break;
        });
        ASSERT_TRUE(shared.exhausted());
        const std::string sig = shared.failure()->describe() + " consumed=" +
                                std::to_string(shared.consumed(Resource::Steps));
        if (first_sig.empty())
            first_sig = sig;
        else
            EXPECT_EQ(sig, first_sig) << "thread count " << t;
    }
}

TEST(ThreadPool, ConcurrentTopLevelFanOutsSerialize) {
    // Two non-pool threads issuing fan-outs at once must not clobber each
    // other's job slot or touch a job the other caller already destroyed:
    // run() serializes, so every index of both fan-outs runs exactly once.
    KnobGuard guard;
    util::set_num_threads(4);
    std::vector<std::atomic<int>> a(64), b(64);
    std::thread other(
        [&] { util::parallel_for(b.size(), [&](std::size_t i) { ++b[i]; }); });
    util::parallel_for(a.size(), [&](std::size_t i) { ++a[i]; });
    other.join();
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].load(), 1);
    for (std::size_t i = 0; i < b.size(); ++i) EXPECT_EQ(b[i].load(), 1);
}

TEST(ThreadPool, RepeatedFanOutsDoNotCorruptJobLifetime) {
    // Regression for the stack-job use-after-free: hammer many short
    // fan-outs so a straggling worker from fan-out k would race fan-out
    // k+1's stack frame if run() returned before workers left the job.
    KnobGuard guard;
    util::set_num_threads(8);
    for (int round = 0; round < 200; ++round) {
        std::atomic<int> hits{0};
        util::parallel_for(16, [&](std::size_t) { ++hits; });
        ASSERT_EQ(hits.load(), 16) << "round " << round;
    }
}

TEST(ThreadPool, NullBudgetPassesNullShards) {
    KnobGuard guard;
    util::set_num_threads(2);
    std::atomic<int> nulls{0};
    util::parallel_for_budget(nullptr, 8, [&](std::size_t, Budget* shard) {
        if (shard == nullptr) ++nulls;
    });
    EXPECT_EQ(nulls.load(), 8);
}

} // namespace
} // namespace si
