// Unit tests for si::obs::report: the MC and verify explain renderers
// (content, determinism across thread counts), the snapshot parser for
// all three stable-metric serializations, the regression diff rules
// behind bench/obs_diff, and the overwrite-refusing writer.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "si/bench_stgs/figures.hpp"
#include "si/mc/requirement.hpp"
#include "si/netlist/netlist.hpp"
#include "si/obs/report.hpp"
#include "si/sg/analysis.hpp"
#include "si/synth/synthesize.hpp"
#include "si/util/parallel.hpp"
#include "si/verify/verifier.hpp"

namespace si {
namespace {

/// The paper's Figure 4 naive implementation t = c'd, b = a + t — the
/// canonical hazardous netlist (fig4_hazard regenerates it too).
net::Netlist fig4_naive(const sg::StateGraph& g) {
    net::Netlist nl(g.signals());
    nl.name = "fig4-naive";
    const GateId ga = nl.add_gate(net::GateKind::Input, "a", {}, g.signals().find("a"));
    const GateId gc = nl.add_gate(net::GateKind::Input, "c", {}, g.signals().find("c"));
    const GateId gd = nl.add_gate(net::GateKind::Input, "d", {}, g.signals().find("d"));
    const GateId t = nl.add_gate(net::GateKind::And, "t", {{gc, true}, {gd, false}});
    nl.add_gate(net::GateKind::Or, "b", {{ga, false}, {t, false}}, g.signals().find("b"));
    return nl;
}

TEST(Report, ConditionNamesAreStable) {
    using mc::McFailure;
    EXPECT_STREQ(obs::report::condition_name(McFailure::UncoveredEr),
                 "covers-ER (condition 1)");
    EXPECT_STREQ(obs::report::condition_name(McFailure::NonMonotonic),
                 "single-change-in-CFR (condition 2)");
    EXPECT_STREQ(obs::report::condition_name(McFailure::CoversOutsideCfr),
                 "no-state-outside-CFR (condition 3)");
    EXPECT_STREQ(obs::report::condition_name(McFailure::NotACoverCube),
                 "cover-cube (Def 15)");
    EXPECT_STREQ(obs::report::condition_name(McFailure::IncorrectCover),
                 "correct-cover (Def 16)");
}

TEST(Report, McExplainNarratesFigure4Failure) {
    const auto g = bench::figure4();
    const sg::RegionAnalysis ra(g);
    mc::McCubeSearch search;
    search.record_trail = true;
    const auto report = mc::check_requirement(ra, search);
    ASSERT_FALSE(report.satisfied());

    const std::string text = obs::report::mc_explain_text(ra, report);
    // Region sizes, the Def 17 condition of the Figure 4 failure, and
    // the recorded candidate trail all appear.
    EXPECT_NE(text.find("|ER|"), std::string::npos);
    EXPECT_NE(text.find("no-state-outside-CFR (condition 3)"), std::string::npos);
    EXPECT_NE(text.find("candidate"), std::string::npos);

    const std::string json = obs::report::mc_explain_json(ra, report);
    EXPECT_NE(json.find("\"mc_explain\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"satisfied\": false"), std::string::npos);
    EXPECT_NE(json.find("\"trail\""), std::string::npos);
    EXPECT_NE(json.find("\"er\""), std::string::npos);
}

TEST(Report, McExplainByteIdenticalAcrossThreadCounts) {
    const auto g = bench::figure1();
    const auto run = [&](std::size_t threads) {
        util::set_num_threads(threads);
        const sg::RegionAnalysis ra(g);
        mc::McCubeSearch search;
        search.record_trail = true;
        const auto report = mc::check_requirement(ra, search);
        return obs::report::mc_explain_text(ra, report) +
               obs::report::mc_explain_json(ra, report);
    };
    const std::string serial = run(1);
    EXPECT_EQ(run(2), serial);
    EXPECT_EQ(run(8), serial);
    util::set_num_threads(0);
}

TEST(Report, VerifyExplainAnnotatesHazardReplay) {
    const auto g = bench::figure4();
    const auto nl = fig4_naive(g);
    const auto result = verify::verify_speed_independence(nl, g);
    ASSERT_FALSE(result.ok);

    const std::string text = obs::report::verify_explain_text(nl, result);
    EXPECT_NE(text.find("HAZARD"), std::string::npos);
    EXPECT_NE(text.find("excited"), std::string::npos);

    const std::string json = obs::report::verify_explain_json(nl, result);
    EXPECT_NE(json.find("\"verify_explain\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"ok\": false"), std::string::npos);
    EXPECT_NE(json.find("\"hazard\""), std::string::npos);
    EXPECT_NE(json.find("\"steps\""), std::string::npos);
}

TEST(Report, VerifyExplainByteIdenticalAcrossThreadCounts) {
    const auto g = bench::figure4();
    const auto nl = fig4_naive(g);
    const auto run = [&](std::size_t threads) {
        util::set_num_threads(threads);
        const auto result = verify::verify_speed_independence(nl, g);
        return obs::report::verify_explain_text(nl, result) +
               obs::report::verify_explain_json(nl, result);
    };
    const std::string serial = run(1);
    EXPECT_EQ(run(2), serial);
    EXPECT_EQ(run(8), serial);
    util::set_num_threads(0);
}

TEST(Report, VerifyExplainOnCleanResult) {
    synth::SynthOptions opts;
    opts.verify_result = true;
    const auto res = synth::synthesize(bench::figure4(), opts);
    ASSERT_TRUE(res.verification.ok);
    const std::string text = obs::report::verify_explain_text(res.netlist, res.verification);
    EXPECT_EQ(text.find("HAZARD"), std::string::npos);
    const std::string json = obs::report::verify_explain_json(res.netlist, res.verification);
    EXPECT_NE(json.find("\"ok\": true"), std::string::npos);
}

TEST(Report, ParseSnapshotMetricsText) {
    const auto snap = obs::report::parse_snapshot(
        "# stable\n"
        "counter mc.checks = 12\n"
        "gauge pool.depth max = 4\n"
        "hist verify.frontier count=3 sum=21 buckets=[2^1:1 2^3:2]\n"
        "# diagnostic (scheduling/path dependent)\n"
        "counter pool.steals = 999\n");
    EXPECT_EQ(snap.counters.size(), 4u);
    EXPECT_EQ(snap.counters.at("mc.checks"), 12u);
    EXPECT_EQ(snap.counters.at("pool.depth"), 4u);
    EXPECT_EQ(snap.counters.at("verify.frontier.count"), 3u);
    EXPECT_EQ(snap.counters.at("verify.frontier.sum"), 21u);
    EXPECT_EQ(snap.counters.count("pool.steals"), 0u); // diagnostic section skipped
}

TEST(Report, ParseSnapshotFlatJsonAndPerfWrapper) {
    const auto flat = obs::report::parse_snapshot("{\"a.b\": 1, \"c\": 42}");
    EXPECT_EQ(flat.counters.size(), 2u);
    EXPECT_EQ(flat.counters.at("c"), 42u);

    // BENCH_perf.json shape: the "metrics" member is the snapshot; the
    // surrounding members (including nested objects and fractional
    // numbers) are skipped.
    const auto perf = obs::report::parse_snapshot(
        "{\"bench\": \"perf\", \"wall_ms\": 12.5,\n"
        " \"cases\": {\"metrics\": \"decoy\"},\n"
        " \"metrics\": {\"verify.states\": 100, \"mc.checks\": 7}}");
    EXPECT_EQ(perf.counters.size(), 2u);
    EXPECT_EQ(perf.counters.at("verify.states"), 100u);
    EXPECT_EQ(perf.counters.at("mc.checks"), 7u);
}

TEST(Report, DiffAppliesThresholdAndSlack) {
    obs::report::Snapshot base, cur;
    base.counters = {{"a", 100}, {"b", 2}, {"gone", 5}};
    cur.counters = {{"a", 160}, {"b", 4}, {"new", 9}};

    const auto d = obs::report::diff_snapshots(base, cur);
    // a: 160 > 100*1.5 and 160 > 100+16 -> regression.
    // b: 4 > 2*1.5 but NOT > 2+16 -> slack saves the tiny counter.
    ASSERT_EQ(d.rows.size(), 2u);
    EXPECT_TRUE(d.rows[0].regressed);
    EXPECT_FALSE(d.rows[1].regressed);
    EXPECT_TRUE(d.regressed());
    ASSERT_EQ(d.missing.size(), 1u);
    EXPECT_EQ(d.missing[0], "gone");
    ASSERT_EQ(d.added.size(), 1u);
    EXPECT_EQ(d.added[0], "new");
    EXPECT_NE(d.describe().find("REGRESSION a:"), std::string::npos);
    EXPECT_NE(d.describe().find("obs_diff: REGRESSION in 1 of 2 counters"),
              std::string::npos);

    // A per-counter override relaxes just that counter.
    obs::report::DiffOptions opts;
    opts.per_counter["a"] = 2.0;
    const auto relaxed = obs::report::diff_snapshots(base, cur, opts);
    EXPECT_FALSE(relaxed.regressed());
    EXPECT_NE(relaxed.describe().find("obs_diff: OK"), std::string::npos);

    // Missing counters regress only on request.
    opts.fail_on_missing = true;
    EXPECT_TRUE(obs::report::diff_snapshots(base, cur, opts).regressed());
}

TEST(Report, WriteRefusesOverwriteWithoutForce) {
    const std::string path = ::testing::TempDir() + "report_write_test.json";
    std::remove(path.c_str());
    EXPECT_TRUE(obs::report::write(path, "{\"v\": 1}\n", false).empty());
    const std::string err = obs::report::write(path, "{\"v\": 2}\n", false);
    EXPECT_NE(err.find("refusing to overwrite"), std::string::npos);
    EXPECT_TRUE(obs::report::write(path, "{\"v\": 3}\n", true).empty());
    std::remove(path.c_str());
}

} // namespace
} // namespace si
