// Monotonous-cover theory tests (Defs 15-19, Lemma 3, Theorems 1-4)
// against the paper's own figures.
#include <gtest/gtest.h>

#include "si/bench_stgs/figures.hpp"
#include "si/mc/cover_cube.hpp"
#include "si/mc/monotonous.hpp"
#include "si/mc/requirement.hpp"
#include "si/sg/analysis.hpp"
#include "si/sg/read_sg.hpp"

namespace si::mc {
namespace {

RegionId find_region(const sg::RegionAnalysis& ra, const std::string& name, bool rising,
                     int instance) {
    const SignalId v = ra.graph().signals().find(name);
    for (std::size_t i = 0; i < ra.regions().size(); ++i) {
        const auto& r = ra.region(RegionId(i));
        if (r.signal == v && r.rising == rising && r.instance == instance) return RegionId(i);
    }
    return RegionId::invalid();
}

Cube named_cube(const sg::StateGraph& g, std::initializer_list<std::pair<const char*, Lit>> lits) {
    Cube c(g.num_signals());
    for (const auto& [name, lit] : lits) c.set_lit(g.signals().find(name), lit);
    return c;
}

TEST(CoverCube, Lemma3SmallestCubeFigure1) {
    const auto g = bench::figure1();
    const sg::RegionAnalysis ra(g);
    // ER(+d,1): only b ordered, at value 0 -> cube b'.
    const RegionId dp1 = find_region(ra, "d", true, 1);
    const Cube c = smallest_cover_cube(ra, dp1);
    EXPECT_EQ(c, named_cube(g, {{"b", Lit::Zero}}));
    // Any cover cube covers the whole ER (its literals are constant there).
    const auto& region = ra.region(dp1);
    region.states.for_each_set([&](std::size_t si) {
        EXPECT_TRUE(c.contains_minterm(g.state(StateId(si)).code));
    });
}

TEST(CoverCube, IsCoverCubeRejectsConcurrentLiterals) {
    const auto g = bench::figure1();
    const sg::RegionAnalysis ra(g);
    const RegionId dp1 = find_region(ra, "d", true, 1);
    // a is concurrent with ER(+d,1): a literal on it is not allowed.
    EXPECT_FALSE(is_cover_cube(ra, dp1, named_cube(g, {{"a", Lit::One}})));
    EXPECT_TRUE(is_cover_cube(ra, dp1, named_cube(g, {{"b", Lit::Zero}})));
    // Wrong polarity of an ordered signal is not a cover cube either.
    EXPECT_FALSE(is_cover_cube(ra, dp1, named_cube(g, {{"b", Lit::One}})));
    // The universal cube is trivially a cover cube.
    EXPECT_TRUE(is_cover_cube(ra, dp1, Cube(g.num_signals())));
}

TEST(CoverCube, CorrectCoveringFigure4) {
    const auto g = bench::figure4();
    const sg::RegionAnalysis ra(g);
    // Cube a covers ER(+b,1) *incorrectly*: it touches 10*01 (in
    // ER(+b,2)? no - that is fine for Def 16) ... the incorrect states
    // are those where the function must be 0. ER(+b,2) states have the
    // up-function at 1, so cube a's incorrectness shows on QR(+b,2)
    // states 1101* / 1*100? Those are 1-set (function free). In fact
    // cube a is a *correct* cover (Thm 1: the graph is persistent) —
    // what fails is the monotonous-cover condition 3.
    const RegionId bp1 = find_region(ra, "b", true, 1);
    const Cube a = named_cube(g, {{"a", Lit::One}});
    EXPECT_TRUE(incorrect_cover_states(ra, bp1, a).empty());
    const auto violations = check_monotonous_cover(ra, bp1, a);
    ASSERT_FALSE(violations.empty());
    EXPECT_EQ(violations[0].kind, McFailure::CoversOutsideCfr);
    // The paper's witness state 10*01 is among the offenders.
    bool found = false;
    for (const auto s : violations[0].states)
        if (g.state_label(s) == "10*01") found = true;
    EXPECT_TRUE(found);
    EXPECT_FALSE(violations[0].describe(ra).empty());
}

TEST(CoverCube, IncorrectCoverDetected) {
    // In fig1, the cube b' for ER(+d,1) covers the initial state 0*0*00
    // where d is stable low: the up-excitation function must be 0 there
    // (Def 16 condition 1 violated).
    const auto g = bench::figure1();
    const sg::RegionAnalysis ra(g);
    const RegionId dp1 = find_region(ra, "d", true, 1);
    const auto bad = incorrect_cover_states(ra, dp1, named_cube(g, {{"b", Lit::Zero}}));
    ASSERT_FALSE(bad.empty());
    bool initial_offends = false;
    for (const auto s : bad)
        if (s == g.initial()) initial_offends = true;
    EXPECT_TRUE(initial_offends);
}

TEST(CoverCube, Theorem1PersistencyAndCorrectCovers) {
    // Thm 1: every cover cube covers correctly ONLY IF the graph is
    // persistent. Contrapositive on fig1: +d is non-persistent and its
    // smallest cover cube is indeed incorrect (previous test); on the
    // persistent fig4, smallest cover cubes of every region of b are
    // correct.
    const auto g = bench::figure4();
    const sg::RegionAnalysis ra(g);
    ASSERT_TRUE(ra.all_persistent());
    for (std::size_t i = 0; i < ra.regions().size(); ++i) {
        const RegionId r{i};
        if (!is_non_input(g.signals()[ra.region(r).signal].kind)) continue;
        EXPECT_TRUE(incorrect_cover_states(ra, r, smallest_cover_cube(ra, r)).empty())
            << ra.region(r).label(g);
    }
}

TEST(ConsistentExcitation, Definition13) {
    const auto g = bench::figure3();
    const sg::RegionAnalysis ra(g);
    const SignalId d = g.signals().find("d");
    // Sd = x' (the paper's wire solution) is a consistent up-excitation
    // function for d in figure 3.
    Cover sd(g.num_signals());
    sd.add(named_cube(g, {{"x", Lit::Zero}}));
    EXPECT_FALSE(check_consistent_excitation(ra, d, true, sd).has_value());
    // Sd = 1 is not: it is 1 on 1*-set/0-set states.
    Cover one(g.num_signals());
    one.add(Cube(g.num_signals()));
    EXPECT_TRUE(check_consistent_excitation(ra, d, true, one).has_value());
    // Rd = x is the consistent down-excitation.
    Cover rd(g.num_signals());
    rd.add(named_cube(g, {{"x", Lit::One}}));
    EXPECT_FALSE(check_consistent_excitation(ra, d, false, rd).has_value());
}

TEST(Monotonous, Figure1HasNoMcForPlusD) {
    const auto g = bench::figure1();
    const sg::RegionAnalysis ra(g);
    const auto rm = find_mc_cube(ra, find_region(ra, "d", true, 1));
    EXPECT_FALSE(rm.ok());
    ASSERT_FALSE(rm.violations.empty());
    // Other regions (e.g. ER(+c,1)) do have MC cubes.
    const auto cp = find_mc_cube(ra, find_region(ra, "c", true, 1));
    EXPECT_TRUE(cp.ok());
}

TEST(Monotonous, Figure3SatisfiesRequirementViaSharedCube) {
    const auto g = bench::figure3();
    const sg::RegionAnalysis ra(g);
    const auto report = check_requirement(ra);
    EXPECT_TRUE(report.satisfied());
    EXPECT_EQ(report.violation_count(), 0u);
    // The two ERs of +d are covered by the shared cube x' — the paper's
    // d = x' wire (generalized MC, Def 19).
    bool found_shared = false;
    for (const auto& r : report.regions) {
        if (ra.region(r.region).signal != g.signals().find("d") || !ra.region(r.region).rising)
            continue;
        ASSERT_TRUE(r.ok());
        EXPECT_EQ(*r.cube, named_cube(g, {{"x", Lit::Zero}}));
        EXPECT_EQ(r.shared_with.size(), 2u);
        found_shared = true;
    }
    EXPECT_TRUE(found_shared);
    // And ER(+x,1) gets the paper's cube Sx = a'b'c'.
    for (const auto& r : report.regions) {
        if (ra.region(r.region).signal != g.signals().find("x") || !ra.region(r.region).rising)
            continue;
        ASSERT_TRUE(r.ok());
        EXPECT_EQ(*r.cube, named_cube(g, {{"a", Lit::Zero}, {"b", Lit::Zero}, {"c", Lit::Zero}}));
    }
    EXPECT_FALSE(report.describe(ra).empty());
}

TEST(Monotonous, GeneralizedConditionsRejectBadSharing) {
    const auto g = bench::figure3();
    const sg::RegionAnalysis ra(g);
    // x' cannot be a generalized MC for {ER(+d,1), ER(-d,1)}: it misses
    // the down-region entirely (condition 1) and covers its complement.
    const RegionId dp1 = find_region(ra, "d", true, 1);
    const RegionId dm1 = find_region(ra, "d", false, 1);
    const std::vector<RegionId> group{dp1, dm1};
    const auto violations =
        check_generalized_mc(ra, group, named_cube(g, {{"x", Lit::Zero}}));
    EXPECT_FALSE(violations.empty());
}

TEST(Monotonous, Theorem2NonDistributiveHasNoMc) {
    // Semi-modular but non-distributive graph (OR causality): the
    // detonant region of y cannot have a single monotonous cover.
    const auto g = sg::read_sg(R"(
.model orc
.inputs a b
.outputs y
.arcs
000 a+ 100
000 b+ 010
100 y+ 101
100 b+ 110
010 y+ 011
010 a+ 110
110 y+ 111
101 b+ 111
011 a+ 111
.initial 000
.end
)");
    ASSERT_TRUE(sg::is_output_semimodular(g));
    ASSERT_FALSE(sg::is_output_distributive(g));
    const sg::RegionAnalysis ra(g);
    const auto rm = find_mc_cube(ra, find_region(ra, "y", true, 1));
    EXPECT_FALSE(rm.ok());
}

TEST(Monotonous, Theorem4McImpliesCsc) {
    // Every graph our checker accepts must satisfy CSC (Thm 4); fig3
    // satisfies MC, so its CSC violation list must be empty.
    const auto g = bench::figure3();
    const sg::RegionAnalysis ra(g);
    ASSERT_TRUE(check_requirement(ra).satisfied());
    EXPECT_TRUE(sg::find_csc_violations(g).empty());
}

TEST(Monotonous, GroupCubeSearch) {
    const auto g = bench::figure3();
    const sg::RegionAnalysis ra(g);
    const std::vector<RegionId> group{find_region(ra, "d", true, 1),
                                      find_region(ra, "d", true, 2)};
    const auto cube = find_group_mc_cube(ra, group);
    ASSERT_TRUE(cube.has_value());
    EXPECT_EQ(*cube, named_cube(g, {{"x", Lit::Zero}}));
    // Empty group: no cube.
    EXPECT_FALSE(find_group_mc_cube(ra, {}).has_value());
}

} // namespace
} // namespace si::mc
