// The arena-packed sharded state store (si/util/state_store.hpp): dense
// ids in insertion order for ANY shard count, codes stable across the
// power-of-two slot resizes, no tombstones ever, and — through the
// unfolder that builds on it — byte-identical state graphs across
// thread counts.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "si/gen/gen.hpp"
#include "si/sg/dot.hpp"
#include "si/sg/from_stg.hpp"
#include "si/util/parallel.hpp"
#include "si/util/state_store.hpp"

namespace si {
namespace {

// A deterministic stream of 3-word codes with repeats mixed in.
std::vector<std::array<std::uint64_t, 3>> code_stream(std::size_t n) {
    std::vector<std::array<std::uint64_t, 3>> codes;
    std::uint64_t x = 0x2545f4914f6cdd1dull;
    for (std::size_t i = 0; i < n; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        codes.push_back({x, x >> 7, i % 5}); // i%5 keeps some near-collisions
    }
    return codes;
}

TEST(StateStore, IdsAreInsertionOrderedForAnyShardCount) {
    const auto codes = code_stream(4096);
    std::vector<std::uint32_t> reference;
    for (const std::size_t shards : {1u, 2u, 8u, 16u}) {
        util::StateStore store(3, shards);
        std::vector<std::uint32_t> ids;
        for (const auto& c : codes) ids.push_back(store.intern(c.data()).first);
        if (reference.empty()) {
            reference = ids;
            // Dense, insertion-ordered: a fresh intern's id equals the
            // store size right before it.
            util::StateStore fresh(3, shards);
            for (const auto& c : codes) {
                const std::size_t before = fresh.size();
                const auto [id, inserted] = fresh.intern(c.data());
                if (inserted) EXPECT_EQ(id, before);
            }
        } else {
            EXPECT_EQ(ids, reference) << shards << " shards";
        }
    }
}

TEST(StateStore, CodesSurviveGrowthAcrossResizeBoundaries) {
    // 16 initial slots per shard and grow-at-3/4 means a single-shard
    // store crosses a 2^k boundary every doubling from 12 entries on;
    // 10k distinct codes force ~10 boundary crossings.
    const auto codes = code_stream(10000);
    util::StateStore store(3, 1);
    std::vector<std::uint32_t> ids;
    for (const auto& c : codes) ids.push_back(store.intern(c.data()).first);
    EXPECT_GT(store.resizes(), 5u);
    for (std::size_t i = 0; i < codes.size(); ++i) {
        ASSERT_EQ(store.find(codes[i].data()), ids[i]);
        const std::uint64_t* row = store.code(ids[i]);
        EXPECT_EQ(row[0], codes[i][0]);
        EXPECT_EQ(row[1], codes[i][1]);
        EXPECT_EQ(row[2], codes[i][2]);
    }
    // Re-interning is a pure lookup: same id, no insertion, no growth.
    const auto resizes_before = store.resizes();
    const auto size_before = store.size();
    for (std::size_t i = 0; i < codes.size(); ++i)
        EXPECT_EQ(store.intern(codes[i].data()), std::make_pair(ids[i], false));
    EXPECT_EQ(store.resizes(), resizes_before);
    EXPECT_EQ(store.size(), size_before);
}

TEST(StateStore, TombstoneFreeInvariantHolds) {
    // Nothing is ever erased, so every non-empty slot is live:
    // occupied_slots() tracks size() exactly, under any mix of fresh
    // interns and duplicate hits.
    const auto codes = code_stream(3000);
    util::StateStore store(3);
    for (std::size_t round = 0; round < 2; ++round) {
        for (const auto& c : codes) {
            (void)store.intern(c.data());
            ASSERT_EQ(store.occupied_slots(), store.size());
        }
    }
}

TEST(StateStore, UnfoldingIsByteIdenticalAcrossThreadCounts) {
    // The store hands out ids from the shared arena in insertion order,
    // so the graphs the unfolder derives from them — and their full
    // serialized form — cannot depend on the worker count.
    const stg::Stg net = gen::build(*gen::Recipe::parse("par:ring3,ring3,seq3"));
    util::set_num_threads(1);
    const std::string reference = sg::to_dot(sg::build_state_graph(net));
    for (const std::size_t threads : {2u, 8u}) {
        util::set_num_threads(threads);
        EXPECT_EQ(sg::to_dot(sg::build_state_graph(net)), reference) << threads << " threads";
    }
    util::set_num_threads(0);
}

} // namespace
} // namespace si
