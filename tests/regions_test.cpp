// Region decomposition tests (Defs 5-12): ERs, QRs, CFRs, minimal
// states, unique entry, triggers, ordered signals, persistency.
#include <gtest/gtest.h>

#include "si/bench_stgs/figures.hpp"
#include "si/sg/read_sg.hpp"
#include "si/sg/regions.hpp"

namespace si::sg {
namespace {

const Region& region_of(const RegionAnalysis& ra, const std::string& signal, bool rising,
                        int instance) {
    const SignalId v = ra.graph().signals().find(signal);
    for (const auto& r : ra.regions())
        if (r.signal == v && r.rising == rising && r.instance == instance) return r;
    throw std::runtime_error("no such region " + signal);
}

TEST(Regions, HandshakeCycleSingletons) {
    const StateGraph g = read_sg(R"(
.model hs
.inputs r
.outputs a
.arcs
00 r+ 10
10 a+ 11
11 r- 01
01 a- 00
.initial 00
.end
)");
    const RegionAnalysis ra(g);
    EXPECT_EQ(ra.regions().size(), 4u); // one ER per transition
    const Region& up_a = region_of(ra, "a", true, 1);
    EXPECT_EQ(up_a.states.count(), 1u);
    EXPECT_TRUE(up_a.unique_entry());
    EXPECT_TRUE(up_a.persistent());
    ASSERT_EQ(up_a.triggers.size(), 1u);
    EXPECT_EQ(g.signals()[up_a.triggers[0].signal].name, "r");
    EXPECT_TRUE(up_a.triggers[0].rising);
    // QR(+a) = the single state 11 (a stable 1 until r- fires... in 11 a
    // is stable; ER(-a) is 01).
    EXPECT_EQ(up_a.quiescent.count(), 1u);
    EXPECT_EQ(up_a.cfr.count(), 2u);
    // r is ordered with ER(+a) (not excited inside), a itself concurrent.
    EXPECT_TRUE(up_a.ordered_signals.test(g.signals().find("r").index()));
    EXPECT_FALSE(up_a.ordered_signals.test(g.signals().find("a").index()));
}

TEST(Regions, Figure1MatchesPaper) {
    const StateGraph g = bench::figure1();
    const RegionAnalysis ra(g);

    // ER(+d,1) = {100*0*, 1*010*, 0010*}, unique entry 100*0*, trigger
    // +a, non-persistent (Example 1 of the paper).
    const Region& dp1 = region_of(ra, "d", true, 1);
    EXPECT_EQ(dp1.states.count(), 3u);
    ASSERT_TRUE(dp1.unique_entry());
    EXPECT_EQ(g.state_label(dp1.minimal_states[0]), "100*0*");
    ASSERT_EQ(dp1.triggers.size(), 1u);
    EXPECT_EQ(g.signals()[dp1.triggers[0].signal].name, "a");
    EXPECT_FALSE(dp1.persistent()); // a falls inside the region

    // The second up-region of d is the single state 1110*.
    const Region& dp2 = region_of(ra, "d", true, 2);
    EXPECT_EQ(dp2.states.count(), 1u);
    EXPECT_EQ(g.state_label(*dp2.minimal_states.begin()), "1110*");

    // QR(+d,1): the paper's dashed region {100*1, 1*0*11, 1*111, 011*1,
    // 01*01, 00*11}.
    EXPECT_EQ(dp1.quiescent.count(), 6u);
    // ER(-d) is the single state 0001*.
    const Region& dm = region_of(ra, "d", false, 1);
    EXPECT_EQ(dm.states.count(), 1u);
    EXPECT_EQ(g.state_label(*dm.minimal_states.begin()), "0001*");

    // Ordered signals of ER(+d,1): only b (a and c are excited inside).
    EXPECT_TRUE(dp1.ordered_signals.test(g.signals().find("b").index()));
    EXPECT_FALSE(dp1.ordered_signals.test(g.signals().find("a").index()));
    EXPECT_FALSE(dp1.ordered_signals.test(g.signals().find("c").index()));
    EXPECT_FALSE(dp1.ordered_signals.test(g.signals().find("d").index()));

    EXPECT_FALSE(ra.all_persistent());
    EXPECT_TRUE(ra.all_unique_entry());
    EXPECT_FALSE(ra.report().empty());
}

TEST(Regions, Figure4CubesFromOrderedSignals) {
    const StateGraph g = bench::figure4();
    const RegionAnalysis ra(g);
    // ER(+b,1) = {10*0*0, 10*10*, 10*11}: only a is ordered (paper: cube a).
    const Region& bp1 = region_of(ra, "b", true, 1);
    EXPECT_EQ(bp1.states.count(), 3u);
    EXPECT_TRUE(bp1.ordered_signals.test(g.signals().find("a").index()));
    EXPECT_FALSE(bp1.ordered_signals.test(g.signals().find("c").index()));
    EXPECT_FALSE(bp1.ordered_signals.test(g.signals().find("d").index()));
    // ER(+b,2) = {0*0*01, 10*01}: c and d ordered (paper: cube c'd).
    const Region& bp2 = region_of(ra, "b", true, 2);
    EXPECT_EQ(bp2.states.count(), 2u);
    EXPECT_TRUE(bp2.ordered_signals.test(g.signals().find("c").index()));
    EXPECT_TRUE(bp2.ordered_signals.test(g.signals().find("d").index()));
    EXPECT_FALSE(bp2.ordered_signals.test(g.signals().find("a").index()));
    // Both persistent (the paper stresses this graph is persistent).
    EXPECT_TRUE(bp1.persistent());
    EXPECT_TRUE(bp2.persistent());
    EXPECT_TRUE(ra.all_persistent());
}

TEST(Regions, SetNotation) {
    const StateGraph g = bench::figure1();
    const RegionAnalysis ra(g);
    const SignalId d = g.signals().find("d");
    // 0*-set(d) = union of ER(+d,i): 4 states; 1*-set(d) = ER(-d): 1.
    EXPECT_EQ(ra.set_excited0(d).count(), 4u);
    EXPECT_EQ(ra.set_excited1(d).count(), 1u);
    // Every reachable state is in exactly one of the four sets.
    BitVec all = ra.set_excited0(d) | ra.set_excited1(d);
    all |= ra.set_stable0(d);
    all |= ra.set_stable1(d);
    EXPECT_EQ(all, ra.reachable());
    BitVec overlap = ra.set_excited0(d) & ra.set_stable0(d);
    EXPECT_TRUE(overlap.none());
}

TEST(Regions, RegionContainingLookup) {
    const StateGraph g = bench::figure1();
    const RegionAnalysis ra(g);
    const SignalId d = g.signals().find("d");
    const StateId s = g.find_by_code(BitVec(4)); // 0000 = initial
    EXPECT_FALSE(ra.region_containing(s, d).is_valid()); // d not excited there
    const Region& dp1 = region_of(ra, "d", true, 1);
    const StateId inside{dp1.states.find_first()};
    const RegionId r = ra.region_containing(inside, d);
    ASSERT_TRUE(r.is_valid());
    EXPECT_EQ(&ra.region(r), &dp1);
}

TEST(Regions, MultipleMinimalStates) {
    // ER(+y) entered from two incomparable sides -> two minimal states.
    const StateGraph g = read_sg(R"(
.model twoentry
.inputs a b
.outputs y
.arcs
000 a+ 100
000 b+ 010
100 y+ 101
010 y+ 011
100 b+ 110
010 a+ 110
110 y+ 111
101 b+ 111
011 a+ 111
.initial 000
.end
)");
    const RegionAnalysis ra(g);
    const Region& yp = region_of(ra, "y", true, 1);
    EXPECT_EQ(yp.states.count(), 3u); // 100, 010, 110
    EXPECT_EQ(yp.minimal_states.size(), 2u);
    EXPECT_FALSE(yp.unique_entry());
    EXPECT_FALSE(ra.all_unique_entry());
}

} // namespace
} // namespace si::sg
