// Golden tests pinning the three transcribed paper figures to the exact
// facts the paper states about them.
#include <gtest/gtest.h>

#include "si/bench_stgs/figures.hpp"
#include "si/sg/analysis.hpp"
#include "si/sg/regions.hpp"

namespace si::bench {
namespace {

TEST(Figure1, ShapeAndSignals) {
    const auto g = figure1();
    EXPECT_EQ(g.num_states(), 14u);
    EXPECT_EQ(g.num_arcs(), 18u);
    EXPECT_EQ(g.signals().count(SignalKind::Input), 2u);  // a, b
    EXPECT_EQ(g.signals().count(SignalKind::Output), 2u); // c, d
    EXPECT_FALSE(sg::check_well_formed(g).has_value());
    EXPECT_EQ(g.reachable().count(), 14u);
}

TEST(Figure1, InitialStateIsInputConflict) {
    const auto g = figure1();
    EXPECT_EQ(g.state_label(g.initial()), "0*0*00");
    const auto conflicts = sg::find_conflicts(g);
    ASSERT_FALSE(conflicts.empty());
    for (const auto& c : conflicts) {
        EXPECT_EQ(c.state, g.initial());
        EXPECT_FALSE(c.internal); // input conflict only
    }
    EXPECT_FALSE(sg::is_semimodular(g));
    EXPECT_TRUE(sg::is_output_semimodular(g));
    // "There are no detonant states ... and this SG is output
    // distributive."
    EXPECT_TRUE(sg::find_detonants(g).empty());
    EXPECT_TRUE(sg::is_output_distributive(g));
}

TEST(Figure1, AllPaperStateLabelsPresent) {
    const auto g = figure1();
    const char* labels[] = {"0010*",  "0*0*00", "100*0*", "010*0",  "1*010*",
                            "100*1",  "0*110",  "1*0*11", "1110*",  "1*111",
                            "011*1",  "01*01",  "0001*",  "00*11"};
    std::vector<std::string> got;
    for (std::size_t i = 0; i < g.num_states(); ++i) got.push_back(g.state_label(StateId(i)));
    for (const auto* l : labels)
        EXPECT_NE(std::find(got.begin(), got.end(), l), got.end()) << l;
}

TEST(Figure3, ShapeAndSignals) {
    const auto g = figure3();
    EXPECT_EQ(g.num_states(), 17u);
    EXPECT_EQ(g.signals().size(), 5u);
    EXPECT_EQ(g.signals()[g.signals().find("x")].kind, SignalKind::Internal);
    EXPECT_FALSE(sg::check_well_formed(g).has_value());
    EXPECT_TRUE(sg::is_output_semimodular(g));
    EXPECT_EQ(g.reachable().count(), 17u);
}

TEST(Figure3, ProjectsOntoFigure1) {
    // Hiding x, figure 3 must allow exactly the traces of figure 1: we
    // check a weak simulation — every fig3 arc either moves x or maps to
    // a fig1 arc between the projected codes.
    const auto g3 = figure3();
    const auto g1 = figure1();
    const SignalId x = g3.signals().find("x");
    auto project = [&](StateId s) {
        BitVec code(4);
        for (std::size_t i = 0; i < 4; ++i)
            if (g3.state(s).code.test(i)) code.set(i);
        return code;
    };
    for (const auto& arc : g3.arcs()) {
        if (arc.signal == x) {
            EXPECT_EQ(project(arc.from), project(arc.to));
            continue;
        }
        const StateId f1 = g1.find_by_code(project(arc.from));
        const StateId t1 = g1.find_by_code(project(arc.to));
        ASSERT_TRUE(f1.is_valid());
        ASSERT_TRUE(t1.is_valid());
        // The projected transition exists in fig1 with the same signal.
        const SignalId sig1 = g1.signals().find(g3.signals()[arc.signal].name);
        const auto a1 = g1.arc_on(f1, sig1);
        ASSERT_NE(a1, UINT32_MAX);
        EXPECT_EQ(g1.arc(a1).to, t1);
    }
}

TEST(Figure3, XRegionsMatchPaperAnnotations) {
    // The paper annotates ER(+x), ER(-x,1) and ER(-x,2) in Figure 3.
    const auto g = figure3();
    const sg::RegionAnalysis ra(g);
    const SignalId x = g.signals().find("x");
    std::size_t up = 0, down = 0;
    for (const auto& r : ra.regions()) {
        if (r.signal != x) continue;
        (r.rising ? up : down) += 1;
    }
    EXPECT_EQ(up, 1u);
    EXPECT_EQ(down, 2u);
}

TEST(Figure4, ShapeAndDuplicateCodes) {
    const auto g = figure4();
    EXPECT_EQ(g.num_states(), 15u);
    EXPECT_EQ(g.signals().count(SignalKind::Input), 3u);  // a, c, d
    EXPECT_EQ(g.signals().count(SignalKind::Output), 1u); // b
    EXPECT_FALSE(sg::check_well_formed(g).has_value());
    // 110*0 and 1*100 share the binary code 1100 (not a CSC violation:
    // b is stable in both).
    EXPECT_FALSE(sg::has_unique_state_coding(g));
    EXPECT_TRUE(sg::find_csc_violations(g).empty());
}

TEST(Figure4, PersistentAndOutputSemimodular) {
    const auto g = figure4();
    EXPECT_TRUE(sg::is_output_semimodular(g));
    EXPECT_TRUE(sg::is_output_distributive(g));
    EXPECT_TRUE(sg::RegionAnalysis(g).all_persistent());
}

TEST(Figure4, TwoUpRegionsOfB) {
    const auto g = figure4();
    const sg::RegionAnalysis ra(g);
    const SignalId b = g.signals().find("b");
    std::size_t up = 0;
    for (const auto& r : ra.regions())
        if (r.signal == b && r.rising) ++up;
    EXPECT_EQ(up, 2u); // ER(+b,1) and ER(+b,2) as drawn
}

} // namespace
} // namespace si::bench
