// Fault-injection engine tests: the structural enumerator and mutator,
// deterministic campaigns, adversarial delay schedules, and witness
// replay — every witness the engine emits must re-execute from reset.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "si/bench_stgs/table1.hpp"
#include "si/sg/from_stg.hpp"
#include "si/synth/synthesize.hpp"
#include "si/util/error.hpp"
#include "si/verify/fault.hpp"
#include "si/verify/verifier.hpp"

namespace si {
namespace {

using verify::fault::FaultClass;

// One synthesized benchmark, built once: small enough for fast tests but
// with C-elements, latch networks and killable mutants (6 of 9).
const synth::SynthesisResult& delement() {
    static const synth::SynthesisResult res = [] {
        for (const auto& entry : bench::table1_suite()) {
            if (std::string(entry.name) == "Delement")
                return synth::synthesize(sg::build_state_graph(bench::load(entry)));
        }
        throw SpecError("Delement missing from the Table-1 suite");
    }();
    return res;
}

TEST(FaultEnumerator, MatchesManualRecount) {
    const auto& nl = delement().netlist;
    std::size_t expected = 0;
    for (const auto& g : nl.gates()) {
        if (g.kind == net::GateKind::And || g.kind == net::GateKind::Or) {
            expected += g.fanins.size();            // one flip per literal
            if (g.fanins.size() > 1) ++expected;    // one drop per multi-input gate
        }
        if (g.kind == net::GateKind::CElement || g.kind == net::GateKind::RsLatch)
            ++expected;                             // one set/reset swap
    }
    const auto faults = verify::fault::enumerate_structural(nl);
    EXPECT_EQ(faults.size(), expected);
    EXPECT_GT(faults.size(), 0u);

    // Deterministic order: a second enumeration is identical.
    const auto again = verify::fault::enumerate_structural(nl);
    ASSERT_EQ(again.size(), faults.size());
    for (std::size_t i = 0; i < faults.size(); ++i) {
        EXPECT_EQ(again[i].cls, faults[i].cls);
        EXPECT_EQ(again[i].gate, faults[i].gate);
        EXPECT_EQ(again[i].fanin, faults[i].fanin);
    }
}

TEST(FaultEnumerator, ApplyMutatesExactlyTheNamedSite) {
    const auto& nl = delement().netlist;
    for (const auto& f : verify::fault::enumerate_structural(nl)) {
        const auto mutant = verify::fault::apply(nl, f);
        ASSERT_EQ(mutant.num_gates(), nl.num_gates());
        const auto& before = nl.gate(f.gate);
        const auto& after = mutant.gate(f.gate);
        switch (f.cls) {
        case FaultClass::LiteralFlip:
            ASSERT_EQ(after.fanins.size(), before.fanins.size());
            EXPECT_NE(after.fanins[f.fanin].inverted, before.fanins[f.fanin].inverted);
            break;
        case FaultClass::LiteralDrop:
            EXPECT_EQ(after.fanins.size(), before.fanins.size() - 1);
            break;
        case FaultClass::LatchSwap:
            ASSERT_GE(after.fanins.size(), 2u);
            EXPECT_EQ(after.fanins[0].gate, before.fanins[1].gate);
            EXPECT_EQ(after.fanins[1].gate, before.fanins[0].gate);
            break;
        default: FAIL() << "enumerate_structural produced a dynamic class";
        }
        // The input netlist is untouched.
        EXPECT_EQ(nl.gate(f.gate).fanins.size(), before.fanins.size());
    }
}

TEST(FaultCampaign, DeterministicFromSeed) {
    const auto& res = delement();
    verify::fault::CampaignOptions opts;
    opts.seed = 42;
    const auto a = verify::fault::run_campaign(res.netlist, res.graph, opts);
    const auto b = verify::fault::run_campaign(res.netlist, res.graph, opts);
    for (std::size_t i = 0; i < verify::fault::kNumFaultClasses; ++i) {
        EXPECT_EQ(a.per_class[i].injected, b.per_class[i].injected);
        EXPECT_EQ(a.per_class[i].killed, b.per_class[i].killed);
    }
    ASSERT_EQ(a.survivors.size(), b.survivors.size());
    for (std::size_t i = 0; i < a.survivors.size(); ++i) {
        EXPECT_EQ(a.survivors[i].cls, b.survivors[i].cls);
        EXPECT_EQ(a.survivors[i].description, b.survivors[i].description);
        EXPECT_EQ(a.survivors[i].witness, b.survivors[i].witness);
    }
    EXPECT_GT(a.injected(), 0u);
    EXPECT_GT(a.killed(), 0u);
    EXPECT_FALSE(a.describe().empty());
}

TEST(FaultCampaign, StructuralKillsMatchDirectVerification) {
    // A mutant the campaign counts as killed is one the verifier refutes.
    const auto& res = delement();
    std::size_t killed = 0;
    for (const auto& f : verify::fault::enumerate_structural(res.netlist)) {
        const auto mutant = verify::fault::apply(res.netlist, f);
        try {
            const auto v = verify::verify_speed_independence(mutant, res.graph);
            if (v.complete() && !v.ok) ++killed;
        } catch (const Error&) {
            ++killed; // structurally broken (cannot even initialize) counts as caught
        }
    }
    verify::fault::CampaignOptions opts;
    opts.dynamic = false;
    const auto report = verify::fault::run_campaign(res.netlist, res.graph, opts);
    std::size_t campaign_killed = 0;
    for (const auto cls :
         {FaultClass::LiteralFlip, FaultClass::LiteralDrop, FaultClass::LatchSwap})
        campaign_killed += report.per_class[static_cast<std::size_t>(cls)].killed;
    EXPECT_EQ(campaign_killed, killed);
    EXPECT_EQ(killed, 6u); // Delement's stable kill count (see EXPERIMENTS.md)
}

TEST(FaultDynamic, AdversarialScheduleCleanOnNominalNetlist) {
    // The synthesized netlist is verified speed-independent; no sampled
    // interleaving may find a violation.
    const auto& res = delement();
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        const auto r = verify::fault::adversarial_schedule(res.netlist, res.graph, seed, 512);
        EXPECT_FALSE(r.violation_found) << "seed " << seed << ": " << r.detail;
        EXPECT_GT(r.steps, 0u);
    }
}

TEST(FaultDynamic, WalksCatchAVerifierKilledMutant) {
    const auto& res = delement();
    for (const auto& f : verify::fault::enumerate_structural(res.netlist)) {
        const auto mutant = verify::fault::apply(res.netlist, f);
        bool buildable = true;
        verify::VerifyResult v;
        try {
            v = verify::verify_speed_independence(mutant, res.graph);
        } catch (const Error&) {
            buildable = false; // mutation broke initialization — not walkable
        }
        if (!buildable || !v.complete() || v.ok) continue;
        bool caught = false;
        for (std::uint64_t seed = 0; seed < 16 && !caught; ++seed)
            caught = verify::fault::adversarial_schedule(mutant, res.graph, seed, 512)
                         .violation_found;
        EXPECT_TRUE(caught) << "no walk caught: " << f.describe(res.netlist);
        return; // one killed mutant suffices
    }
    FAIL() << "no verifier-killed mutant found";
}

TEST(FaultDynamic, SeuWitnessesReplay) {
    const auto& res = delement();
    verify::fault::DynamicOptions opts;
    opts.seed = 7;
    opts.max_sites = 16;
    const auto injections = verify::fault::inject_seu(res.netlist, res.graph, opts);
    ASSERT_FALSE(injections.empty());
    for (const auto& inj : injections) {
        ASSERT_FALSE(inj.witness.empty());
        const auto r = verify::fault::replay_witness(res.netlist, res.graph, inj.witness);
        EXPECT_TRUE(r.valid) << inj.detail << " -- replay error: " << r.error;
    }
}

TEST(FaultDynamic, GlitchWitnessesReplay) {
    const auto& res = delement();
    verify::fault::DynamicOptions opts;
    opts.seed = 7;
    opts.max_sites = 16;
    const auto injections = verify::fault::inject_glitches(res.netlist, res.graph, opts);
    ASSERT_FALSE(injections.empty());
    for (const auto& inj : injections) {
        const auto r = verify::fault::replay_witness(res.netlist, res.graph, inj.witness);
        EXPECT_TRUE(r.valid) << inj.detail << " -- replay error: " << r.error;
    }
}

TEST(FaultDynamic, CampaignSurvivorWitnessesReplay) {
    const auto& res = delement();
    verify::fault::CampaignOptions opts;
    opts.seed = 3;
    const auto report = verify::fault::run_campaign(res.netlist, res.graph, opts);
    for (const auto& s : report.survivors) {
        if (s.witness.empty()) continue; // structural survivors carry no trace
        const auto r = verify::fault::replay_witness(res.netlist, res.graph, s.witness);
        EXPECT_TRUE(r.valid) << s.description << " -- replay error: " << r.error;
    }
}

TEST(FaultReplay, RejectsGarbageTokens) {
    const auto& res = delement();
    const std::vector<std::string> bogus_gate{"+no_such_gate"};
    auto r = verify::fault::replay_witness(res.netlist, res.graph, bogus_gate);
    EXPECT_FALSE(r.valid);
    EXPECT_FALSE(r.error.empty());

    const std::vector<std::string> bogus_seu{"seu:no_such_gate"};
    r = verify::fault::replay_witness(res.netlist, res.graph, bogus_seu);
    EXPECT_FALSE(r.valid);

    // A firing that is not even excited must be rejected, not executed.
    const auto& first_output = [&]() -> const net::Gate& {
        for (const auto& g : res.netlist.gates())
            if (g.kind != net::GateKind::Input) return g;
        throw SpecError("netlist without non-input gates");
    }();
    const std::vector<std::string> unexcited{
        (first_output.initial_value ? "+" : "-") + first_output.name};
    r = verify::fault::replay_witness(res.netlist, res.graph, unexcited);
    EXPECT_FALSE(r.valid);
}

} // namespace
} // namespace si
