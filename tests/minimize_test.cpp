// Two-level minimization tests: results must stay logically equal to the
// onset over the care space, never touch the offset, and not grow.
#include <gtest/gtest.h>

#include <random>

#include "si/boolean/minimize.hpp"

namespace si {
namespace {

BitVec code_of(std::size_t bits, std::size_t n) {
    BitVec v(n);
    for (std::size_t i = 0; i < n; ++i)
        if ((bits >> i) & 1u) v.set(i);
    return v;
}

Cube random_cube(std::mt19937& rng, std::size_t n) {
    Cube c(n);
    for (std::size_t i = 0; i < n; ++i) {
        switch (rng() % 3) {
        case 0: c.set_lit(SignalId(i), Lit::Zero); break;
        case 1: c.set_lit(SignalId(i), Lit::One); break;
        default: break;
        }
    }
    return c;
}

TEST(Minimize, MergesAdjacentMinterms) {
    // f = a'b' + a b' (over 2 vars) == b'.
    Cover f(2);
    f.add(Cube::from_string("00"));
    f.add(Cube::from_string("10"));
    const Cover g = minimize(f, Cover(2));
    EXPECT_EQ(g.size(), 1u);
    EXPECT_EQ(g.cube(0).to_string(), "-0");
}

TEST(Minimize, UsesDontCares) {
    // Onset {11}, DC {10} -> the single cube "1-".
    Cover f(2);
    f.add(Cube::from_string("11"));
    Cover dc(2);
    dc.add(Cube::from_string("10"));
    const Cover g = minimize(f, dc);
    EXPECT_EQ(g.size(), 1u);
    EXPECT_EQ(g.cube(0).to_string(), "1-");
}

TEST(Minimize, DropsRedundantCube) {
    // a + b + ab: the third cube is redundant.
    Cover f(2);
    f.add(Cube::from_string("1-"));
    f.add(Cube::from_string("-1"));
    f.add(Cube::from_string("11"));
    const Cover g = minimize(f, Cover(2));
    EXPECT_EQ(g.size(), 2u);
}

TEST(Minimize, EmptyOnsetStaysEmpty) {
    const Cover g = minimize(Cover(3), Cover(3));
    EXPECT_TRUE(g.empty());
}

TEST(Minimize, RandomFunctionsStayEquivalent) {
    std::mt19937 rng(41);
    for (int trial = 0; trial < 120; ++trial) {
        const std::size_t n = 4;
        Cover onset(n), dc(n);
        const std::size_t k = 1 + rng() % 5;
        for (std::size_t i = 0; i < k; ++i) onset.add(random_cube(rng, n));
        if (rng() % 2) dc.add(random_cube(rng, n));
        const Cover g = minimize(onset, dc);

        for (std::size_t m = 0; m < 16; ++m) {
            const BitVec code = code_of(m, n);
            if (onset.eval(code) && !dc.eval(code))
                EXPECT_TRUE(g.eval(code)) << "onset point lost, trial " << trial;
            if (!onset.eval(code) && !dc.eval(code))
                EXPECT_FALSE(g.eval(code)) << "offset point gained, trial " << trial;
        }
        EXPECT_LE(g.size(), onset.size());
    }
}

TEST(ExpandAgainst, MakesCubesPrimeAndDisjointFromOffset) {
    std::mt19937 rng(43);
    for (int trial = 0; trial < 80; ++trial) {
        const std::size_t n = 4;
        Cover onset(n);
        onset.add(random_cube(rng, n));
        Cover care = onset;
        const Cover offset = care.complement();
        const Cover expanded = expand_against(onset, offset);
        for (const auto& c : expanded.cubes()) {
            for (const auto& r : offset.cubes())
                EXPECT_FALSE(c.intersects(r));
        }
    }
}

TEST(Irredundant, RemovesCoveredCube) {
    Cover f(3);
    f.add(Cube::from_string("1--"));
    f.add(Cube::from_string("11-"));
    const Cover g = irredundant(f, Cover(3));
    EXPECT_EQ(g.size(), 1u);
    EXPECT_EQ(g.cube(0).to_string(), "1--");
}

} // namespace
} // namespace si
