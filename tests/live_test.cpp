// Tests for si::obs::live: the heartbeat snapshotter (manual-tick
// determinism, byte-identity across worker counts), the Progress gauge
// and its Stable counter footprint, the stall watchdog (trip, recover,
// opt-out), the SI_OBS_LIVE spec parser, the unified overwrite refusal,
// the configurable flight ring, and a forked end-to-end SI_OBS_LIVE
// boot smoke.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "si/bench_stgs/generators.hpp"
#include "si/obs/flight.hpp"
#include "si/obs/live.hpp"
#include "si/obs/obs.hpp"
#include "si/obs/report.hpp"
#include "si/sg/from_stg.hpp"
#include "si/util/parallel.hpp"

namespace si {
namespace {

/// Every test runs with live disarmed and a clean registry, and leaves
/// the process the same way.
struct LiveGuard {
    explicit LiveGuard(obs::Mode m) {
        obs::live::shutdown();
        obs::set_mode(m);
        obs::reset();
    }
    ~LiveGuard() {
        obs::live::shutdown();
        obs::flight::set_dir("");
        obs::flight::set_capacity(0);
        util::set_num_threads(0);
        obs::set_mode(obs::Mode::Off);
        obs::reset();
    }
};

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

std::vector<std::string> lines_of(const std::string& text) {
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t nl = text.find('\n', start); nl != std::string::npos;
         nl = text.find('\n', start)) {
        out.push_back(text.substr(start, nl - start));
        start = nl + 1;
    }
    return out;
}

obs::live::Options opts_for(const std::string& path, std::uint32_t interval_ms = 100,
                            bool diag = true, std::uint32_t stall = 8) {
    obs::live::Options o;
    o.path = path;
    o.interval_ms = interval_ms;
    o.force = true;
    o.diag = diag;
    o.stall_intervals = stall;
    return o;
}

TEST(Live, OverwriteRefusalIsUnifiedAcrossWriters) {
    LiveGuard guard(obs::Mode::Metrics);
    const std::string path = ::testing::TempDir() + "live_refusal.txt";
    std::remove(path.c_str());
    ASSERT_EQ(obs::write_text_file(path, "x", false), "");
    const std::string expected = "refusing to overwrite '" + path + "' (pass --force to allow)";
    // One contract, three writers: the raw helper, the report writer and
    // the heartbeat sink all refuse with the identical message.
    EXPECT_EQ(obs::write_text_file(path, "x", false), expected);
    EXPECT_EQ(obs::report::write(path, "x", false), expected);
    obs::live::Options o = opts_for(path);
    o.force = false;
    EXPECT_EQ(obs::live::configure(o), expected);
    EXPECT_FALSE(obs::live::armed());
    std::remove(path.c_str());
}

TEST(Live, EnvSpecParsing) {
    obs::live::Options o;
    std::string err;
    ASSERT_TRUE(obs::live::detail::parse_env_spec("/tmp/hb.jsonl", o, err));
    EXPECT_EQ(o.path, "/tmp/hb.jsonl");
    EXPECT_EQ(o.interval_ms, 1000u);
    EXPECT_FALSE(o.force);
    EXPECT_TRUE(o.diag);

    o = {};
    ASSERT_TRUE(
        obs::live::detail::parse_env_spec("/tmp/hb.jsonl:250:force:nodiag:stall=3", o, err));
    EXPECT_EQ(o.interval_ms, 250u);
    EXPECT_TRUE(o.force);
    EXPECT_FALSE(o.diag);
    EXPECT_EQ(o.stall_intervals, 3u);

    o = {};
    EXPECT_FALSE(obs::live::detail::parse_env_spec("", o, err));
    EXPECT_FALSE(obs::live::detail::parse_env_spec("/tmp/hb.jsonl:bogus", o, err));
    EXPECT_NE(err.find("bogus"), std::string::npos);
    EXPECT_FALSE(obs::live::detail::parse_env_spec("/tmp/hb.jsonl:0", o, err));
    EXPECT_FALSE(obs::live::detail::parse_env_spec("/tmp/hb.jsonl:99999999", o, err));
    EXPECT_FALSE(obs::live::detail::parse_env_spec("/tmp/hb.jsonl:stall=x", o, err));
}

TEST(Live, ManualTickEmitsDeltasRatesAndSchema) {
    LiveGuard guard(obs::Mode::Metrics);
    const std::string path = ::testing::TempDir() + "live_tick.jsonl";
    ASSERT_EQ(obs::live::configure(opts_for(path, 100)), "");
    ASSERT_TRUE(obs::live::armed());

    obs::count("live.test.widgets", 5);
    EXPECT_EQ(obs::live::tick(), 0u);
    obs::count("live.test.widgets", 2);
    {
        obs::RequestScope req(7, 42);
        EXPECT_EQ(obs::live::tick(), 1u);
    }
    obs::live::shutdown();
    EXPECT_FALSE(obs::live::armed());
    EXPECT_EQ(obs::live::tick(), UINT64_MAX);

    const std::vector<std::string> hbs = lines_of(slurp(path));
    ASSERT_EQ(hbs.size(), 3u); // two ticks + the final shutdown heartbeat
    // Heartbeat 0: the full delta since configure(), rate scaled by the
    // nominal 100 ms interval (5 * 1000 / 100 = 50/s).
    EXPECT_NE(hbs[0].find("\"si_live\":1"), std::string::npos);
    EXPECT_NE(hbs[0].find("\"seq\":0"), std::string::npos);
    EXPECT_NE(hbs[0].find("\"live.test.widgets\":5"), std::string::npos);
    EXPECT_NE(hbs[0].find("\"rates\":{\"live.test.widgets\":50}"), std::string::npos);
    EXPECT_NE(hbs[0].find("\"stalled\":false"), std::string::npos);
    // Heartbeat 1: only the delta (2), the active request, and the Diag
    // meta-counter from heartbeat 0 itself.
    EXPECT_NE(hbs[1].find("\"live.test.widgets\":2"), std::string::npos);
    EXPECT_EQ(hbs[1].find("\"live.test.widgets\":5"), std::string::npos);
    EXPECT_NE(hbs[1].find("\"requests\":[{\"id\":7,\"seed\":42}]"), std::string::npos);
    EXPECT_NE(hbs[1].find("\"obs.live.heartbeats\":1"), std::string::npos);
    // Final heartbeat: tagged, and the request scope has closed.
    EXPECT_NE(hbs[2].find("\"final\":true"), std::string::npos);
    EXPECT_NE(hbs[2].find("\"requests\":[]"), std::string::npos);
}

TEST(Live, ProgressFlushesStableCounterAndAggregates) {
    LiveGuard guard(obs::Mode::Metrics);
    const std::string path = ::testing::TempDir() + "live_progress.jsonl";
    ASSERT_EQ(obs::live::configure(opts_for(path)), "");
    {
        obs::Progress p("live.test.stage", 10);
        p.advance(3);
        p.set_done(7);
        p.set_done(4); // monotone: ignored
        p.set_budget(7, 100);
        EXPECT_EQ(p.done(), 7u);
        EXPECT_EQ(p.total(), 10u);
        obs::live::tick();
    }
    { obs::Progress p2("live.test.stage", 5); } // second instance, zero work
    obs::live::tick();
    obs::live::shutdown();

    const std::vector<std::string> hbs = lines_of(slurp(path));
    ASSERT_EQ(hbs.size(), 3u);
    EXPECT_NE(hbs[0].find("\"progress\":{\"live.test.stage\":{\"done\":7,\"total\":10,"
                          "\"gauges\":1,\"budget_spent\":7,\"budget_cap\":100}}"),
              std::string::npos);
    // After destruction the gauge moves to the completed aggregate.
    EXPECT_NE(hbs[1].find("\"progress\":{}"), std::string::npos);
    EXPECT_NE(hbs[1].find("\"completed\":{\"live.test.stage\":{\"done\":7,\"instances\":2}}"),
              std::string::npos);
    // And its deterministic Stable footprint is a plain counter.
    EXPECT_NE(obs::metrics_json().find("\"progress.live.test.stage.done\": 7"),
              std::string::npos);
}

TEST(Live, ProgressIsNoOpWhenDisabledAndDisarmed) {
    LiveGuard guard(obs::Mode::Off);
    obs::Progress p("live.test.off", 10);
    p.advance(3);
    EXPECT_EQ(p.done(), 0u); // null slot: nothing recorded anywhere
    EXPECT_EQ(obs::metrics_text(true), "");
}

TEST(Live, WatchdogTripsDumpsFlightAndRecovers) {
    LiveGuard guard(obs::Mode::Metrics);
    const std::string dir = ::testing::TempDir() + "live_flight";
    const std::string dump = dir + "/flight-stalled.json";
    std::remove(dump.c_str());
    obs::flight::set_dir(dir);
    const std::string path = ::testing::TempDir() + "live_watchdog.jsonl";
    ASSERT_EQ(obs::live::configure(opts_for(path, 100, true, /*stall=*/2)), "");

    obs::Progress stuck("live.test.stuck");
    obs::Progress idle("live.test.idle", 0, /*watchdog=*/false);
    stuck.advance();
    obs::live::tick(); // 0: grace — baselines the gauge
    obs::live::tick(); // 1: one stalled interval
    obs::live::tick(); // 2: two stalled intervals -> trip
    stuck.advance();
    obs::live::tick(); // 3: advanced -> recovered
    obs::live::shutdown();

    const std::vector<std::string> hbs = lines_of(slurp(path));
    ASSERT_EQ(hbs.size(), 5u);
    EXPECT_NE(hbs[0].find("\"stalled\":false"), std::string::npos);
    EXPECT_NE(hbs[1].find("\"stalled\":false"), std::string::npos);
    EXPECT_NE(hbs[2].find("\"stalled\":true"), std::string::npos);
    EXPECT_NE(hbs[2].find("\"stalled_stages\":[\"live.test.stuck\"]"), std::string::npos);
    EXPECT_NE(hbs[3].find("\"stalled\":false"), std::string::npos);
    // The trip left a post-mortem and counted itself (Diag lane, so it
    // shows up in the next heartbeat's deltas).
    EXPECT_NE(slurp(dump).find("stalled"), std::string::npos);
    EXPECT_NE(hbs[3].find("\"obs.live.stalls\":1"), std::string::npos);
    // The opted-out gauge still shows in the progress section but never
    // stalls anything even though it is idle: the stalled_stages exact
    // match above is the real assertion; double-check the tag here.
    EXPECT_EQ(hbs[2].find("\"stalled_stages\":[\"live.test.idle\""), std::string::npos);
    std::remove(dump.c_str());
}

TEST(Live, HeartbeatStreamByteIdenticalAcrossWorkerCounts) {
    // The manual-tick stream over a deterministic workload must not
    // depend on the worker count once Diag deltas (scheduling-dependent
    // by design) are excluded.
    std::vector<std::string> streams;
    for (const int threads : {1, 2, 8}) {
        LiveGuard guard(obs::Mode::Metrics);
        util::set_num_threads(static_cast<std::size_t>(threads));
        const std::string path = ::testing::TempDir() + "live_bytes_" +
                                 std::to_string(threads) + ".jsonl";
        ASSERT_EQ(obs::live::configure(opts_for(path, 100, /*diag=*/false)), "");
        const stg::Stg stg = bench::make_fork_join(4);
        (void)sg::build_state_graph(stg);
        obs::live::tick();
        (void)sg::build_state_graph(stg);
        obs::live::tick();
        obs::live::shutdown();
        streams.push_back(slurp(path));
        EXPECT_GE(lines_of(streams.back()).size(), 3u);
    }
    EXPECT_EQ(streams[0], streams[1]);
    EXPECT_EQ(streams[0], streams[2]);
}

TEST(Live, FlightRingCapacityIsConfigurable) {
    LiveGuard guard(obs::Mode::Metrics);
    obs::flight::set_dir(::testing::TempDir() + "live_flight_ring");
    obs::flight::reset();
    obs::flight::set_capacity(8);
    EXPECT_EQ(obs::flight::capacity(), 8u);
    for (int i = 0; i < 20; ++i) {
        char buf[16];
        std::snprintf(buf, sizeof buf, "note-%02d", i);
        obs::flight::note(buf);
    }
    const std::string doc = obs::flight::render("test");
    EXPECT_EQ(doc.find("note-00"), std::string::npos); // evicted
    EXPECT_EQ(doc.find("note-11"), std::string::npos); // evicted
    EXPECT_NE(doc.find("note-12"), std::string::npos); // newest 8 kept
    EXPECT_NE(doc.find("note-19"), std::string::npos);
    obs::flight::set_capacity(0);
    EXPECT_EQ(obs::flight::capacity(), obs::flight::kDefaultCapacity);
}

TEST(Live, ForkedEnvBootEmitsHeartbeats) {
    // End-to-end: a child process boots live telemetry purely from
    // SI_OBS_LIVE (Progress construction -> ensure_started -> configure
    // + background thread), with obs Off so the Metrics upgrade path
    // runs too.
    LiveGuard guard(obs::Mode::Off);
    const std::string path = ::testing::TempDir() + "live_forked.jsonl";
    std::remove(path.c_str());
    const pid_t pid = fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
        const std::string spec = path + ":30:force";
        ::setenv("SI_OBS_LIVE", spec.c_str(), 1);
        obs::live::detail::reset_env_for_test(); // re-consult the env we just set
        {
            obs::Progress p("live.test.forked");
            for (int i = 0; i < 4; ++i) {
                p.advance(5);
                std::this_thread::sleep_for(std::chrono::milliseconds(35));
            }
        }
        obs::live::shutdown();
        ::_exit(obs::enabled() ? 0 : 3); // the env boot upgraded Off -> Metrics
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
    const std::vector<std::string> hbs = lines_of(slurp(path));
    ASSERT_GE(hbs.size(), 2u); // >=1 interval heartbeat + the final one
    bool saw_progress = false;
    for (const auto& hb : hbs)
        saw_progress = saw_progress || hb.find("live.test.forked") != std::string::npos;
    EXPECT_TRUE(saw_progress);
    EXPECT_NE(hbs.back().find("\"final\":true"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Live, HeartbeatsStayOffTheStableSurface) {
    // The whole point of the Diag-lane contract: running with live armed
    // changes no Stable export byte.
    std::vector<std::string> exports;
    for (const bool with_live : {false, true}) {
        LiveGuard guard(obs::Mode::Metrics);
        if (with_live) {
            const std::string path = ::testing::TempDir() + "live_surface.jsonl";
            ASSERT_EQ(obs::live::configure(opts_for(path)), "");
        }
        (void)sg::build_state_graph(bench::make_fork_join(3));
        obs::live::tick();
        exports.push_back(obs::metrics_text(false));
        obs::live::shutdown();
    }
    EXPECT_EQ(exports[0], exports[1]);
}

} // namespace
} // namespace si
