// Interface-projection (Foam Rubber Wrapper) tests: every signal
// insertion must preserve the observable behaviour exactly.
#include <gtest/gtest.h>

#include "si/bench_stgs/figures.hpp"
#include "si/bench_stgs/table1.hpp"
#include "si/sg/from_stg.hpp"
#include "si/sg/projection.hpp"
#include "si/sg/read_sg.hpp"
#include "si/synth/synthesize.hpp"

namespace si::sg {
namespace {

StateGraph handshake() {
    return read_sg(R"(
.model hs
.inputs r
.outputs a
.arcs
00 r+ 10
10 a+ 11
11 r- 01
01 a- 00
.initial 00
.end
)");
}

TEST(Projection, IdentityProjects) {
    const auto g = handshake();
    EXPECT_TRUE(check_projection(g, g));
}

TEST(Projection, PaperFigure3ProjectsOntoFigure1) {
    const auto r = check_projection(bench::figure3(), bench::figure1());
    EXPECT_TRUE(r.ok) << r.reason;
}

TEST(Projection, DetectsForbiddenVisibleTransition) {
    // An implementation that fires a out of order.
    const auto spec = handshake();
    const auto impl = read_sg(R"(
.model bad
.inputs r
.outputs a
.arcs
00 a+ 01
01 r+ 11
11 a- 10
10 r- 00
.initial 00
.end
)");
    const auto r = check_projection(impl, spec);
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.reason.find("forbids"), std::string::npos);
}

TEST(Projection, DetectsLostOutputOption) {
    // An implementation that never produces a+ at all.
    const auto spec = handshake();
    const auto impl = read_sg(R"(
.model stuck
.inputs r
.outputs a
.arcs
00 r+ 10
.initial 00
.end
)");
    const auto r = check_projection(impl, spec);
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.reason.find("unavailable"), std::string::npos);
}

TEST(Projection, DetectsInputDelayedByHiddenSignal) {
    // The input r may only fire after the hidden x+ — illegal: the
    // environment does not know about x.
    const auto spec = handshake();
    const auto impl = read_sg(R"(
.model delayed
.inputs r
.outputs a
.internal x
.arcs
000 x+ 001
001 r+ 101
101 a+ 111
111 x- 110
110 r- 010
010 a- 000
.initial 000
.end
)");
    const auto r = check_projection(impl, spec);
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.reason.find("inputs must not wait"), std::string::npos);
}

TEST(Projection, MissingSignalRejected) {
    const auto spec = handshake();
    StateGraph impl;
    impl.signals().add("r", SignalKind::Input);
    BitVec c0(1);
    const StateId s0 = impl.add_state(c0);
    BitVec c1(1);
    c1.set(0);
    const StateId s1 = impl.add_state(c1);
    impl.add_arc(s0, s1, SignalId(0));
    impl.set_initial(s0);
    const auto r = check_projection(impl, spec);
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.reason.find("missing"), std::string::npos);
}

class Table1Projection : public ::testing::TestWithParam<bench::Table1Entry> {};

TEST_P(Table1Projection, InsertedSignalsPreserveTheInterface) {
    const auto spec = build_state_graph(bench::load(GetParam()));
    const auto res = synth::synthesize(spec);
    const auto r = check_projection(res.graph, spec);
    EXPECT_TRUE(r.ok) << GetParam().name << ": " << r.reason;
}

INSTANTIATE_TEST_SUITE_P(Suite, Table1Projection, ::testing::ValuesIn(bench::table1_suite()),
                         [](const ::testing::TestParamInfo<bench::Table1Entry>& info) {
                             std::string name = info.param.name;
                             for (auto& c : name)
                                 if (c == '-') c = '_';
                             return name;
                         });

TEST(Projection, FigureRepairsPreserveTheInterface) {
    for (const auto* which : {"fig1", "fig4"}) {
        const auto spec = std::string(which) == "fig1" ? bench::figure1() : bench::figure4();
        const auto res = synth::synthesize(spec);
        const auto r = check_projection(res.graph, spec);
        EXPECT_TRUE(r.ok) << which << ": " << r.reason;
    }
}

} // namespace
} // namespace si::sg
