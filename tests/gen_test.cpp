// si::gen tests: recipe round-trips, seed determinism across thread
// counts, liveness/safeness/semi-modularity of every generated net, the
// derived-seed discipline, and shrinker convergence on injected faults.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "si/gen/gen.hpp"
#include "si/sg/analysis.hpp"
#include "si/sg/from_stg.hpp"
#include "si/stg/parse.hpp"
#include "si/stg/structure.hpp"
#include "si/util/error.hpp"
#include "si/util/parallel.hpp"

namespace si::gen {
namespace {

TEST(Recipe, ToStringParseRoundTrip) {
    const std::vector<std::string> forms = {
        "ser:pipe2",       "par:pipe1",           "ser:pipe2,fork3",
        "par:seq2,choice2", "par:ring3,seq2,ring3", "ser:choice2,ring1",
    };
    for (const auto& s : forms) {
        const auto r = Recipe::parse(s);
        ASSERT_TRUE(r.has_value()) << s;
        EXPECT_EQ(r->to_string(), s);
    }
    for (std::uint64_t seed = 0; seed < 64; ++seed) {
        const Recipe r = random_recipe(seed);
        const auto back = Recipe::parse(r.to_string());
        ASSERT_TRUE(back.has_value()) << r.to_string();
        EXPECT_EQ(*back, r) << r.to_string();
    }
}

TEST(Recipe, ParseRejectsMalformed) {
    EXPECT_FALSE(Recipe::parse("").has_value());
    EXPECT_FALSE(Recipe::parse("pipe2").has_value());          // no mode
    EXPECT_FALSE(Recipe::parse("ser:").has_value());           // no blocks
    EXPECT_FALSE(Recipe::parse("ser:seq2").has_value());       // Seq in serial
    EXPECT_FALSE(Recipe::parse("par:choice1").has_value());    // below min param
    EXPECT_FALSE(Recipe::parse("par:pipe0").has_value());
    EXPECT_FALSE(Recipe::parse("par:pipe999999").has_value()); // above max param
    EXPECT_FALSE(Recipe::parse("par:pipe99999999999999999999").has_value());
    EXPECT_FALSE(Recipe::parse("par:gate2").has_value());      // unknown kind
    EXPECT_FALSE(Recipe::parse("xxx:pipe2").has_value());
}

TEST(Gen, SameSeedSameNetAcrossThreadCounts) {
    const std::vector<std::uint64_t> seeds = {1, 2, 17, 123456789, 0xdeadbeef};
    std::vector<std::string> reference;
    for (const auto s : seeds) reference.push_back(stg::write_g(generate(s)));
    for (const std::size_t threads : {1u, 2u, 8u}) {
        util::set_num_threads(threads);
        for (std::size_t i = 0; i < seeds.size(); ++i)
            EXPECT_EQ(stg::write_g(generate(seeds[i])), reference[i])
                << "seed " << seeds[i] << " with " << threads << " threads";
    }
    util::set_num_threads(0);
}

TEST(Gen, GeneratedNetsAreLiveSafeAndSemimodular) {
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        const Recipe recipe = random_recipe(seed);
        const stg::Stg net = build(recipe);
        const auto report = stg::analyze_structure(net);
        EXPECT_TRUE(report.safe) << recipe.to_string() << ": " << report.offender;
        EXPECT_TRUE(report.live) << recipe.to_string() << ": " << report.offender;
        const auto graph = sg::build_state_graph(net);
        EXPECT_TRUE(sg::is_output_semimodular(graph)) << recipe.to_string();
    }
}

TEST(Gen, SizeDialScalesStateGraph) {
    // The generator's size dial must span tens to thousands of states:
    // parallel composition multiplies component state counts.
    const auto states = [](const char* text) {
        const auto r = Recipe::parse(text);
        EXPECT_TRUE(r.has_value()) << text;
        return sg::build_state_graph(build(*r), {1u << 15}).num_states();
    };
    const std::size_t small = states("par:pipe1");
    const std::size_t large = states("par:ring3,ring3,seq3");
    EXPECT_LT(small, 10u);
    EXPECT_GT(large, 1000u);
}

TEST(Gen, ChoiceBlocksAreArbitrationFreeChoice) {
    // The rising phase is a free choice among *input* transitions (the
    // environment picks a branch); the falling phase is a controlled
    // choice steered by the branch's memory place, so the whole net is
    // not free-choice class — but it stays safe, live, and output
    // semi-modular, i.e. no output ever arbitrates.
    const auto r = Recipe::parse("par:choice3");
    ASSERT_TRUE(r.has_value());
    const stg::Stg net = build(*r);
    const auto report = stg::analyze_structure(net);
    EXPECT_FALSE(report.marked_graph); // a real choice place exists
    EXPECT_TRUE(report.safe) << report.offender;
    EXPECT_TRUE(report.live) << report.offender;
    EXPECT_TRUE(sg::is_output_semimodular(sg::build_state_graph(net)));
}

TEST(Gen, DeriveSeedIsPerIndexStable) {
    // The fault-engine discipline: the seed of item i depends only on
    // (campaign seed, i), so adding or removing cases never reshuffles
    // the rest. Distinctness over a wide window guards degenerate mixing.
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 1000; ++i) EXPECT_TRUE(seen.insert(derive_seed(1, i)).second);
    EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
    EXPECT_EQ(derive_seed(1, 7), derive_seed(1, 7));
}

TEST(Gen, BuildRejectsInvalidRecipes) {
    EXPECT_THROW((void)build(Recipe{}), SpecError); // empty
    Recipe bad;
    bad.serial = true;
    bad.blocks.push_back({BlockKind::Seq, 2});
    EXPECT_THROW((void)build(bad), SpecError); // Seq needs a parallel recipe
    Recipe oob;
    oob.blocks.push_back({BlockKind::Choice, 1});
    EXPECT_THROW((void)build(oob), SpecError); // choice needs >= 2 branches
}

TEST(Shrink, ConvergesOnInjectedFault) {
    // "Fails" iff the recipe has a choice block with >= 2 branches: the
    // shrinker must strip every other block and converge to par:choice2.
    const auto has_choice = [](const Recipe& r) {
        for (const auto& b : r.blocks)
            if (b.kind == BlockKind::Choice && b.param >= 2) return true;
        return false;
    };
    auto failing = Recipe::parse("ser:pipe3,choice3,ring2");
    ASSERT_TRUE(failing.has_value());
    ShrinkStats stats;
    const Recipe min = shrink(*failing, has_choice, &stats);
    EXPECT_EQ(min.to_string(), "par:choice2");
    EXPECT_GT(stats.attempts, 0u);
    EXPECT_GT(stats.accepted, 0u);
}

TEST(Shrink, RespectsAttemptCap) {
    auto failing = Recipe::parse("ser:pipe3,fork3,ring3");
    ASSERT_TRUE(failing.has_value());
    ShrinkStats stats;
    const Recipe out = shrink(*failing, [](const Recipe&) { return true; }, &stats, 2);
    EXPECT_EQ(stats.attempts, 2u);
    // With every candidate "failing", two probes can drop at most two
    // blocks — params are untouched when the cap trips first.
    EXPECT_GE(out.blocks.size(), 1u);
    for (const auto& b : out.blocks) EXPECT_EQ(b.param, 3);
}

TEST(Shrink, KeepsOriginalWhenNothingSmallerFails) {
    const auto original = Recipe::parse("par:fork2");
    ASSERT_TRUE(original.has_value());
    const Recipe out = shrink(*original, [&](const Recipe& r) { return r == *original; });
    EXPECT_EQ(out, *original);
}

} // namespace
} // namespace si::gen
