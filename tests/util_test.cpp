// Unit tests for si::util — BitVec algebra, ids, text helpers, tables.
#include <gtest/gtest.h>

#include <random>

#include "si/util/bitvec.hpp"
#include "si/util/error.hpp"
#include "si/util/ids.hpp"
#include "si/util/table.hpp"
#include "si/util/text.hpp"

namespace si {
namespace {

TEST(BitVec, StartsCleared) {
    BitVec v(130);
    EXPECT_EQ(v.size(), 130u);
    EXPECT_TRUE(v.none());
    EXPECT_EQ(v.count(), 0u);
    EXPECT_EQ(v.find_first(), 130u);
}

TEST(BitVec, SetResetFlip) {
    BitVec v(70);
    v.set(0);
    v.set(69);
    v.set(64);
    EXPECT_TRUE(v.test(0));
    EXPECT_TRUE(v.test(64));
    EXPECT_TRUE(v.test(69));
    EXPECT_EQ(v.count(), 3u);
    v.reset(64);
    EXPECT_FALSE(v.test(64));
    v.flip(64);
    EXPECT_TRUE(v.test(64));
    v.assign(64, false);
    EXPECT_FALSE(v.test(64));
}

TEST(BitVec, ConstructAllOnes) {
    BitVec v(67, true);
    EXPECT_EQ(v.count(), 67u);
    v.set_all();
    EXPECT_EQ(v.count(), 67u); // tail bits beyond size stay clear
    v.reset_all();
    EXPECT_TRUE(v.none());
}

TEST(BitVec, ResizeGrowWithValue) {
    BitVec v(3);
    v.set(1);
    v.resize(130, true);
    EXPECT_TRUE(v.test(1));
    EXPECT_FALSE(v.test(0));
    EXPECT_TRUE(v.test(3));
    EXPECT_TRUE(v.test(129));
    EXPECT_EQ(v.count(), 128u);
}

TEST(BitVec, SetAlgebra) {
    BitVec a(100), b(100);
    a.set(1); a.set(50); a.set(99);
    b.set(50); b.set(2);
    BitVec i = a & b;
    EXPECT_EQ(i.count(), 1u);
    EXPECT_TRUE(i.test(50));
    BitVec u = a | b;
    EXPECT_EQ(u.count(), 4u);
    BitVec x = a ^ b;
    EXPECT_EQ(x.count(), 3u);
    BitVec d = a;
    d.and_not(b);
    EXPECT_EQ(d.count(), 2u);
    EXPECT_TRUE(d.test(1));
    EXPECT_TRUE(d.test(99));
}

TEST(BitVec, SubsetAndIntersect) {
    BitVec a(64), b(64);
    a.set(3);
    b.set(3); b.set(9);
    EXPECT_TRUE(a.is_subset_of(b));
    EXPECT_FALSE(b.is_subset_of(a));
    EXPECT_TRUE(a.intersects(b));
    a.reset(3);
    EXPECT_FALSE(a.intersects(b));
    EXPECT_TRUE(a.is_subset_of(b)); // empty set is subset of everything
}

TEST(BitVec, SizeMismatchThrows) {
    BitVec a(10), b(11);
    EXPECT_THROW(a &= b, InternalError);
    EXPECT_THROW((void)a.intersects(b), InternalError);
}

TEST(BitVec, FindNextIteratesSetBits) {
    BitVec v(200);
    const std::size_t bits[] = {0, 1, 63, 64, 65, 128, 199};
    for (auto b : bits) v.set(b);
    std::vector<std::size_t> seen;
    for (std::size_t i = v.find_first(); i < v.size(); i = v.find_next(i)) seen.push_back(i);
    EXPECT_EQ(seen, std::vector<std::size_t>(std::begin(bits), std::end(bits)));
}

TEST(BitVec, ForEachSetMatchesFindNext) {
    std::mt19937 rng(7);
    for (int trial = 0; trial < 20; ++trial) {
        BitVec v(1 + static_cast<std::size_t>(rng() % 300));
        for (std::size_t i = 0; i < v.size(); ++i)
            if (rng() % 3 == 0) v.set(i);
        std::vector<std::size_t> a, b;
        v.for_each_set([&](std::size_t i) { a.push_back(i); });
        for (std::size_t i = v.find_first(); i < v.size(); i = v.find_next(i)) b.push_back(i);
        EXPECT_EQ(a, b);
        EXPECT_EQ(a.size(), v.count());
    }
}

TEST(BitVec, HashDiffersOnContentAndLength) {
    BitVec a(10), b(10), c(11);
    a.set(3);
    EXPECT_NE(a.hash(), b.hash());
    EXPECT_NE(b.hash(), c.hash());
    BitVec a2(10);
    a2.set(3);
    EXPECT_EQ(a.hash(), a2.hash());
}

TEST(BitVec, ToString) {
    BitVec v(5);
    v.set(0);
    v.set(3);
    EXPECT_EQ(v.to_string(), "10010");
}

TEST(Ids, DistinctSpacesAndInvalid) {
    const SignalId s(3);
    EXPECT_EQ(s.index(), 3u);
    EXPECT_TRUE(s.is_valid());
    EXPECT_FALSE(SignalId::invalid().is_valid());
    EXPECT_EQ(SignalId(1), SignalId(1));
    EXPECT_NE(SignalId(1), SignalId(2));
    EXPECT_LT(SignalId(1), SignalId(2));
}

TEST(Text, Split) {
    EXPECT_EQ(split("a b  c"), (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(split("  "), std::vector<std::string>{});
    EXPECT_EQ(split("a,b;c", ",;"), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Text, Trim) {
    EXPECT_EQ(trim("  x \t\r\n"), "x");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim(" \t "), "");
}

TEST(Text, StartsWithAndJoin) {
    EXPECT_TRUE(starts_with(".model x", ".model"));
    EXPECT_FALSE(starts_with(".mo", ".model"));
    EXPECT_EQ(join({"a", "b"}, ", "), "a, b");
    EXPECT_EQ(join({}, ","), "");
}

TEST(Text, LinesOf) {
    EXPECT_EQ(lines_of("a\nb\n"), (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(lines_of("a\r\nb"), (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(lines_of(""), std::vector<std::string>{});
}

TEST(Table, RendersAlignedColumns) {
    TextTable t({"name", "n"});
    t.add_row({"alpha", "1"});
    t.add_row({"b", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
    EXPECT_THROW(t.add_row({"only-one"}), InternalError);
}

} // namespace
} // namespace si
