// The classic-component gallery: every entry parses, classifies sanely
// and synthesizes to a verified speed-independent circuit; expectations
// about state-signal need are pinned per component.
#include <gtest/gtest.h>

#include "si/bdd/symbolic.hpp"
#include "si/bench_stgs/components.hpp"
#include "si/netlist/print.hpp"
#include "si/sg/analysis.hpp"
#include "si/sg/from_stg.hpp"
#include "si/stg/structure.hpp"
#include "si/synth/synthesize.hpp"
#include "si/util/error.hpp"

namespace si::bench {
namespace {

class Components : public ::testing::TestWithParam<Component> {};

TEST_P(Components, ParsesAndIsWellFormed) {
    const auto net = load(GetParam());
    const auto report = stg::analyze_structure(net);
    EXPECT_TRUE(report.safe) << GetParam().name;
    EXPECT_TRUE(report.live) << GetParam().name << ": " << report.offender;
    const auto g = sg::build_state_graph(net);
    EXPECT_TRUE(sg::is_output_semimodular(g));
}

TEST_P(Components, SynthesizesAndVerifies) {
    const auto g = sg::build_state_graph(load(GetParam()));
    synth::SynthOptions opts;
    opts.verify_result = true;
    if (GetParam().name == "call") {
        // The shared done wire makes every reset cube re-rise across the
        // opposite branch — the hardest insertion pattern in the gallery.
        // The branch-and-bound engine solves it with two state signals
        // (one per service branch), but needs a deeper model scan than
        // the default budget.
        opts.insertion.max_attempts = 4096;
        const auto res = synth::synthesize(g, opts);
        EXPECT_EQ(res.inserted.size(), 2u);
        EXPECT_TRUE(res.verification.ok) << res.verification.describe();
        return;
    }
    const auto res = synth::synthesize(g, opts);
    EXPECT_TRUE(res.mc.satisfied());
    EXPECT_TRUE(res.verification.ok) << res.verification.describe();
    EXPECT_EQ(!res.inserted.empty(), GetParam().needs_state_signals) << GetParam().name;
}

TEST_P(Components, SymbolicCscMatchesTheConflictKind) {
    const auto sym = bdd::symbolic_csc(load(GetParam()));
    if (GetParam().name == "toggle") {
        // toggle's need for state is a coding conflict proper.
        EXPECT_FALSE(sym.csc);
    } else if (GetParam().name == "call") {
        // call's difficulty is NOT a coding conflict — its codes are
        // unique (the acknowledge wires encode the serving branch); the
        // problem is purely the Monotonous Cover acknowledgement
        // condition on the shared done wire.
        EXPECT_TRUE(sym.csc);
        EXPECT_TRUE(sym.usc);
    } else {
        EXPECT_TRUE(sym.csc) << GetParam().name;
    }
}

INSTANTIATE_TEST_SUITE_P(Gallery, Components, ::testing::ValuesIn(component_suite()),
                         [](const ::testing::TestParamInfo<Component>& info) {
                             return info.param.name;
                         });

TEST(ComponentsGallery, Call2SynthesizesWithoutInsertion) {
    for (const auto& c : component_suite()) {
        if (c.name != "call2") continue;
        const auto g = sg::build_state_graph(load(c));
        synth::SynthOptions opts;
        opts.verify_result = true;
        const auto res = synth::synthesize(g, opts);
        EXPECT_TRUE(res.inserted.empty());
        EXPECT_TRUE(res.verification.ok) << res.verification.describe();
    }
}

TEST(ComponentsGallery, JoinIsJustACElement) {
    const auto g = sg::build_state_graph(load(component_suite()[3]));
    const auto res = synth::synthesize(g);
    const auto s = res.netlist.stats();
    EXPECT_EQ(s.c_elements, 1u);
    // S(c) = a b, R(c) = a'b': one AND each, no OR gates.
    EXPECT_EQ(s.and_gates, 2u);
    EXPECT_EQ(s.or_gates, 0u);
}

TEST(ComponentsGallery, ToggleInsertsPhaseSignal) {
    const auto g = sg::build_state_graph(load(component_suite()[0]));
    const auto res = synth::synthesize(g);
    EXPECT_GE(res.inserted.size(), 1u);
}

TEST(ComponentsGallery, CallHandlesInputChoice) {
    const auto g = sg::build_state_graph(load(component_suite()[1]));
    // The choice place makes the graph non-semi-modular overall, but
    // only by inputs.
    EXPECT_FALSE(sg::is_semimodular(g));
    EXPECT_TRUE(sg::is_output_semimodular(g));
}

} // namespace
} // namespace si::bench
