// Table-1 benchmark suite: every entry parses, matches its declared
// interface, and synthesizes to a verified speed-independent circuit
// with the expected number of inserted state signals.
#include <gtest/gtest.h>

#include "si/bench_stgs/table1.hpp"
#include "si/sg/analysis.hpp"
#include "si/sg/from_stg.hpp"
#include "si/synth/synthesize.hpp"

namespace si::bench {
namespace {

class Table1 : public ::testing::TestWithParam<Table1Entry> {};

TEST_P(Table1, InterfaceMatchesPaperColumns) {
    const auto& entry = GetParam();
    const auto net = load(entry);
    EXPECT_EQ(static_cast<int>(net.signals().count(SignalKind::Input)), entry.paper_inputs);
    EXPECT_EQ(static_cast<int>(net.signals().count(SignalKind::Output)), entry.paper_outputs);
}

TEST_P(Table1, StateGraphIsCleanSpecification) {
    const auto graph = sg::build_state_graph(load(GetParam()));
    EXPECT_FALSE(sg::check_well_formed(graph).has_value());
    EXPECT_TRUE(sg::is_output_semimodular(graph));
    EXPECT_TRUE(sg::is_output_distributive(graph));
    EXPECT_EQ(graph.reachable().count(), graph.num_states());
}

TEST_P(Table1, SynthesisMatchesPaperAddedSignals) {
    const auto& entry = GetParam();
    const auto graph = sg::build_state_graph(load(entry));
    synth::SynthOptions opts;
    opts.verify_result = true;
    const auto res = synth::synthesize(graph, opts);
    // The branch-and-bound driver may find solutions with FEWER state
    // signals than the paper's tool (it does on ganesh_8: 1 vs 2); more
    // than the paper would be a regression.
    EXPECT_LE(static_cast<int>(res.inserted.size()), entry.paper_added) << entry.name;
    EXPECT_TRUE(res.mc.satisfied());
    EXPECT_TRUE(res.verification.ok) << res.verification.describe();
}

TEST_P(Table1, RsImplementationAlsoVerifies) {
    const auto graph = sg::build_state_graph(load(GetParam()));
    synth::SynthOptions opts;
    opts.build.use_rs_latches = true;
    opts.verify_result = true;
    const auto res = synth::synthesize(graph, opts);
    EXPECT_TRUE(res.verification.ok) << res.verification.describe();
    EXPECT_EQ(res.netlist.stats().c_elements, 0u);
}

TEST_P(Table1, SharedImplementationAlsoVerifies) {
    const auto graph = sg::build_state_graph(load(GetParam()));
    synth::SynthOptions opts;
    opts.enable_sharing = true;
    opts.verify_result = true;
    const auto res = synth::synthesize(graph, opts);
    EXPECT_TRUE(res.verification.ok) << res.verification.describe();
}

TEST_P(Table1, SynthesisIsDeterministic) {
    const auto graph = sg::build_state_graph(load(GetParam()));
    const auto r1 = synth::synthesize(graph);
    const auto r2 = synth::synthesize(graph);
    EXPECT_EQ(r1.inserted, r2.inserted);
    EXPECT_EQ(r1.graph.num_states(), r2.graph.num_states());
    EXPECT_EQ(r1.netlist.stats().literals, r2.netlist.stats().literals);
}

INSTANTIATE_TEST_SUITE_P(Suite, Table1, ::testing::ValuesIn(table1_suite()),
                         [](const ::testing::TestParamInfo<Table1Entry>& info) {
                             std::string name = info.param.name;
                             for (auto& c : name)
                                 if (c == '-') c = '_';
                             return name;
                         });

TEST(Table1Suite, HasAllNinePaperRows) {
    const auto& suite = table1_suite();
    ASSERT_EQ(suite.size(), 9u);
    EXPECT_EQ(suite[0].name, "nak-pa");
    EXPECT_EQ(suite[6].name, "mp-forward-pkt");
    EXPECT_EQ(suite[8].name, "Delement");
}

} // namespace
} // namespace si::bench
