// Determinism contract of the parallel core: synthesis, verification and
// fault campaigns must produce byte-identical reports for any thread
// count, and the indexed fast paths must match the seed scan paths bit
// for bit. The same contract extends to the observability layer: traced
// runs must export byte-identical span trees and metrics regardless of
// worker count or code path.
#include <gtest/gtest.h>

#include <string>

#include "si/bench_stgs/figures.hpp"
#include "si/bench_stgs/generators.hpp"
#include "si/bench_stgs/table1.hpp"
#include "si/obs/obs.hpp"
#include "si/sg/from_stg.hpp"
#include "si/sg/regions.hpp"
#include "si/synth/synthesize.hpp"
#include "si/util/error.hpp"
#include "si/util/parallel.hpp"
#include "si/verify/fault.hpp"
#include "si/verify/verifier.hpp"

namespace si {
namespace {

struct KnobGuard {
    ~KnobGuard() {
        util::set_num_threads(0);
        util::set_fast_path(true);
        obs::set_mode(obs::Mode::Off);
        obs::reset();
    }
};

const sg::StateGraph& delement_spec() {
    static const sg::StateGraph spec = [] {
        for (const auto& entry : bench::table1_suite())
            if (entry.name == "Delement") return sg::build_state_graph(bench::load(entry));
        throw SpecError("Delement missing from the Table-1 suite");
    }();
    return spec;
}

std::string synthesis_signature(const sg::StateGraph& spec) {
    synth::SynthOptions opts;
    opts.verify_result = true;
    const auto res = synth::synthesize(spec, opts);
    const sg::RegionAnalysis ra(res.graph);
    return res.summary() + "\n" + res.graph.dump() + "\n" + ra.report() + "\n" +
           res.mc.describe(ra) + "\n" + res.verification.describe();
}

std::string campaign_signature(const net::Netlist& nl, const sg::StateGraph& spec) {
    verify::fault::CampaignOptions opts;
    opts.seed = 7;
    opts.dynamic_opts.max_sites = 8;
    const auto report = verify::fault::run_campaign(nl, spec, opts);
    std::string sig = report.describe();
    for (const auto& s : report.survivors) {
        sig += "\n" + s.description;
        for (const auto& w : s.witness) sig += " " + w;
    }
    return sig;
}

TEST(Determinism, SynthesisIdenticalForAnyThreadCount) {
    KnobGuard guard;
    util::set_num_threads(1);
    const std::string serial = synthesis_signature(delement_spec());
    for (const std::size_t t : {2u, 8u}) {
        util::set_num_threads(t);
        EXPECT_EQ(synthesis_signature(delement_spec()), serial) << "thread count " << t;
    }
}

TEST(Determinism, FaultCampaignIdenticalForAnyThreadCount) {
    KnobGuard guard;
    util::set_num_threads(1);
    const auto res = synth::synthesize(delement_spec());
    const std::string serial = campaign_signature(res.netlist, res.graph);
    for (const std::size_t t : {2u, 8u}) {
        util::set_num_threads(t);
        EXPECT_EQ(campaign_signature(res.netlist, res.graph), serial) << "thread count " << t;
    }
}

TEST(Determinism, VerifySuiteIdenticalForAnyThreadCount) {
    KnobGuard guard;
    util::set_num_threads(1);
    const auto res = synth::synthesize(delement_spec());
    const std::string serial = verify::verify_suite(res.netlist, res.graph).describe();
    EXPECT_FALSE(serial.empty());
    for (const std::size_t t : {2u, 8u}) {
        util::set_num_threads(t);
        EXPECT_EQ(verify::verify_suite(res.netlist, res.graph).describe(), serial)
            << "thread count " << t;
    }
}

TEST(Determinism, FastPathMatchesSeedScanPath) {
    KnobGuard guard;
    util::set_num_threads(1);
    util::set_fast_path(false);
    const std::string seed_synth = synthesis_signature(delement_spec());
    const auto seed_res = synth::synthesize(delement_spec());
    const std::string seed_campaign = campaign_signature(seed_res.netlist, seed_res.graph);

    util::set_fast_path(true);
    EXPECT_EQ(synthesis_signature(delement_spec()), seed_synth);
    const auto fast_res = synth::synthesize(delement_spec());
    EXPECT_EQ(campaign_signature(fast_res.netlist, fast_res.graph), seed_campaign);
}

TEST(Determinism, ExcitationIndexMatchesArcScan) {
    KnobGuard guard;
    const sg::StateGraph g = bench::figure3();
    for (std::size_t si = 0; si < g.num_states(); ++si) {
        for (std::size_t vi = 0; vi < g.num_signals(); ++vi) {
            const StateId s{si};
            const SignalId v{vi};
            util::set_fast_path(true);
            const bool exc_fast = g.excited(s, v);
            const auto arc_fast = g.arc_on(s, v);
            util::set_fast_path(false);
            EXPECT_EQ(exc_fast, g.excited(s, v));
            EXPECT_EQ(arc_fast, g.arc_on(s, v));
            util::set_fast_path(true);
            EXPECT_EQ(g.excited_set(v).test(si), exc_fast);
        }
    }
}

TEST(Determinism, RegionAnalysisIdenticalUnderBothPaths) {
    KnobGuard guard;
    const auto stg = bench::make_fork_join(3);
    const sg::StateGraph g = sg::build_state_graph(stg);
    util::set_fast_path(true);
    const std::string fast = sg::RegionAnalysis(g).report();
    util::set_fast_path(false);
    EXPECT_EQ(sg::RegionAnalysis(g).report(), fast);
}

// ---------------------------------------------------------------------------
// Observability: traced runs obey the same byte-identical contract.

/// One traced synthesis + fault-campaign pass; returns every
/// deterministic obs export concatenated (Chrome JSON, span tree, and
/// the Stable metrics — Diag metrics are scheduling-dependent by design
/// and excluded, which is exactly what metrics_text(false) does).
std::string obs_signature() {
    // Materialize the lazily-built spec *outside* the traced window:
    // its one-time sg.explore span would otherwise appear only in the
    // first signature taken.
    const sg::StateGraph& spec = delement_spec();
    obs::reset();
    synth::SynthOptions opts;
    opts.verify_result = true;
    const auto res = synth::synthesize(spec, opts);
    verify::fault::CampaignOptions copts;
    copts.seed = 7;
    copts.dynamic_opts.max_sites = 8;
    (void)verify::fault::run_campaign(res.netlist, res.graph, copts);
    return obs::trace_chrome_json() + "\n---\n" + obs::trace_tree() + "\n---\n" +
           obs::metrics_text(/*include_diag=*/false);
}

TEST(Determinism, TracedExportsIdenticalForAnyThreadCount) {
    KnobGuard guard;
    obs::set_mode(obs::Mode::Trace);
    util::set_num_threads(1);
    const std::string serial = obs_signature();
    EXPECT_NE(serial.find("\"name\":\"synth.bnb\""), std::string::npos);
    EXPECT_NE(serial.find("\"name\":\"fault.campaign\""), std::string::npos);
    EXPECT_NE(serial.find("counter verify.states"), std::string::npos);
    for (const std::size_t t : {2u, 8u}) {
        util::set_num_threads(t);
        EXPECT_EQ(obs_signature(), serial) << "thread count " << t;
    }
}

TEST(Determinism, TracedExportsIdenticalUnderBothPaths) {
    KnobGuard guard;
    obs::set_mode(obs::Mode::Trace);
    util::set_num_threads(1);
    util::set_fast_path(false);
    const std::string seed = obs_signature();
    util::set_fast_path(true);
    EXPECT_EQ(obs_signature(), seed);
}

TEST(Determinism, ViolationSpanPathIdenticalForAnyThreadCount) {
    KnobGuard guard;
    obs::set_mode(obs::Mode::Trace);
    // The naive Figure-4 implementation (t = c'd, b = a + t — Example 2)
    // carries the paper's hazard; its provenance must name the same span
    // path for every worker count.
    const auto g = bench::figure4();
    net::Netlist nl(g.signals());
    const GateId ga = nl.add_gate(net::GateKind::Input, "a", {}, g.signals().find("a"));
    const GateId gc = nl.add_gate(net::GateKind::Input, "c", {}, g.signals().find("c"));
    const GateId gd = nl.add_gate(net::GateKind::Input, "d", {}, g.signals().find("d"));
    const GateId t0 = nl.add_gate(net::GateKind::And, "t", {{gc, true}, {gd, false}});
    nl.add_gate(net::GateKind::Or, "b", {{ga, false}, {t0, false}}, g.signals().find("b"));
    util::set_num_threads(1);
    obs::reset();
    const auto serial = verify::verify_speed_independence(nl, g);
    ASSERT_FALSE(serial.violations.empty());
    EXPECT_FALSE(serial.violations.front().span_path.empty());
    for (const std::size_t t : {2u, 8u}) {
        util::set_num_threads(t);
        obs::reset();
        const auto res = verify::verify_speed_independence(nl, g);
        ASSERT_FALSE(res.violations.empty());
        EXPECT_EQ(res.violations.front().span_path, serial.violations.front().span_path)
            << "thread count " << t;
    }
}

} // namespace
} // namespace si
