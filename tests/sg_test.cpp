// State-graph structure, the .sg reader, STG->SG translation and the
// behavioural property checks of Section II.
#include <gtest/gtest.h>

#include "si/sg/analysis.hpp"
#include "si/sg/dot.hpp"
#include "si/sg/from_stg.hpp"
#include "si/sg/minimize_sg.hpp"
#include "si/sg/projection.hpp"
#include "si/sg/read_sg.hpp"
#include "si/sg/state_graph.hpp"
#include "si/stg/parse.hpp"
#include "si/util/error.hpp"

namespace si::sg {
namespace {

StateGraph toggle() {
    // a+ -> y+ -> a- -> y- cycle (input a, output y).
    return read_sg(R"(
.model toggle
.inputs a
.outputs y
.arcs
00 a+ 10
10 y+ 11
11 a- 01
01 y- 00
.initial 00
.end
)");
}

TEST(StateGraph, BasicAccessors) {
    const StateGraph g = toggle();
    EXPECT_EQ(g.num_states(), 4u);
    EXPECT_EQ(g.num_arcs(), 4u);
    const SignalId a = g.signals().find("a");
    const SignalId y = g.signals().find("y");
    const StateId s0 = g.initial();
    EXPECT_FALSE(g.value(s0, a));
    EXPECT_TRUE(g.excited(s0, a));
    EXPECT_FALSE(g.excited(s0, y));
    EXPECT_EQ(g.state_label(s0), "0*0");
    EXPECT_TRUE(g.reachable().count() == 4u);
}

TEST(StateGraph, ArcConsistencyEnforced) {
    StateGraph g;
    const SignalId a = g.signals().add("a", SignalKind::Input);
    (void)g.signals().add("b", SignalKind::Output);
    BitVec c00(2), c11(2);
    c11.set(0);
    c11.set(1);
    const StateId s0 = g.add_state(c00);
    const StateId s3 = g.add_state(c11);
    EXPECT_THROW(g.add_arc(s0, s3, a), SpecError); // two bits differ
    EXPECT_THROW(g.add_arc(s0, s0, a), SpecError); // no bit differs
}

TEST(StateGraph, EdgeOfReportsPolarity) {
    const StateGraph g = toggle();
    const auto& arc0 = g.arc(0);
    const SignalEdge e = g.edge_of(0);
    EXPECT_EQ(e.signal, arc0.signal);
    EXPECT_TRUE(e.rising);
}

TEST(ReadSg, RejectsBadInput) {
    EXPECT_THROW(read_sg(".model m\n.inputs a\n.arcs\n0 a+ 1\n.end\n"), ParseError); // no .initial
    EXPECT_THROW(read_sg(".model m\n.inputs a\n.arcs\n0 a- 1\n.initial 0\n.end\n"), ParseError); // polarity disagrees
    EXPECT_THROW(read_sg(".model m\n.inputs a\n.arcs\n00 a+ 10\n.initial 00\n.end\n"), ParseError); // width
    EXPECT_THROW(read_sg(".model m\n.inputs a\n.arcs\n0 b+ 1\n.initial 0\n.end\n"), ParseError); // unknown signal
}

TEST(ReadSg, RoundTrip) {
    const StateGraph g = toggle();
    const StateGraph h = read_sg(write_sg(g));
    EXPECT_EQ(h.num_states(), g.num_states());
    EXPECT_EQ(h.num_arcs(), g.num_arcs());
    EXPECT_EQ(write_sg(h), write_sg(g));
}

TEST(FromStg, HandshakeTranslation) {
    const auto net = stg::read_g(R"(
.model hs
.inputs r
.outputs a
.graph
r+ a+
a+ r-
r- a-
a- r+
.marking { <a-,r+> }
.end
)");
    const StateGraph g = build_state_graph(net);
    EXPECT_EQ(g.num_states(), 4u);
    EXPECT_EQ(g.num_arcs(), 4u);
    // Initial values inferred: both signals rise first, so code 00.
    EXPECT_EQ(g.state(g.initial()).code.to_string(), "00");
}

TEST(FromStg, InitialCodeInferenceFallFirst) {
    const auto net = stg::read_g(R"(
.model ff
.inputs r
.outputs a
.graph
r- a-
a- r+
r+ a+
a+ r-
.marking { <a+,r-> }
.end
)");
    EXPECT_EQ(infer_initial_code(net).to_string(), "11");
}

TEST(FromStg, ConcurrencyDiamond) {
    const auto net = stg::read_g(R"(
.model diamond
.inputs a
.outputs y z
.graph
a+ y+ z+
y+ a-
z+ a-
a- y- z-
y- a+
z- a+
.marking { <y-,a+> <z-,a+> }
.end
)");
    const StateGraph g = build_state_graph(net);
    // a+ then {y+, z+} interleave: diamond of 4 states there, plus the
    // mirrored falling diamond: 8 states total.
    EXPECT_EQ(g.num_states(), 8u);
    const SignalId y = g.signals().find("y");
    const SignalId z = g.signals().find("z");
    StateId after_a = StateId::invalid();
    for (const auto arcidx : g.out_arcs(g.initial())) after_a = g.arc(arcidx).to;
    ASSERT_TRUE(after_a.is_valid());
    EXPECT_TRUE(g.excited(after_a, y));
    EXPECT_TRUE(g.excited(after_a, z));
}

TEST(FromStg, InconsistentStgRejected) {
    // y rises twice with no fall in between.
    const auto net = stg::read_g(R"(
.model bad
.inputs a
.outputs y
.graph
a+ y+
y+ y+/2
y+/2 a-
a- y-
y- y-/2
y-/2 a+
.marking { <y-/2,a+> }
.end
)");
    EXPECT_THROW((void)build_state_graph(net), SpecError);
}

TEST(FromStg, StateCapEnforced) {
    // 12 concurrent toggling outputs would need 2^12 markings.
    std::string g = ".model big\n.inputs a\n.outputs";
    for (int i = 0; i < 12; ++i) g += " y" + std::to_string(i);
    g += "\n.graph\n";
    std::string arcs_up = "a+", arcs_back;
    for (int i = 0; i < 12; ++i) {
        g += "a+ y" + std::to_string(i) + "+\n";
        g += "y" + std::to_string(i) + "+ a-\n";
        g += "a- y" + std::to_string(i) + "-\n";
        g += "y" + std::to_string(i) + "- a+\n";
    }
    g += ".marking {";
    for (int i = 0; i < 12; ++i) g += " <y" + std::to_string(i) + "-,a+>";
    g += " }\n.end\n";
    const auto net = stg::read_g(g);
    FromStgOptions opts;
    opts.max_states = 1000;
    EXPECT_THROW((void)build_state_graph(net, opts), SpecError);
}

TEST(Analysis, InputConflictIsNotInternal) {
    // Free choice between inputs a and b disables the other: an input
    // conflict, so still output semi-modular.
    const StateGraph g = read_sg(R"(
.model choice
.inputs a b
.outputs y
.arcs
000 a+ 100
000 b+ 010
100 y+ 101
010 y+ 011
101 a- 001
011 b- 001
001 y- 000
.initial 000
.end
)");
    const auto conflicts = find_conflicts(g);
    ASSERT_EQ(conflicts.size(), 2u);
    EXPECT_FALSE(conflicts[0].internal);
    EXPECT_FALSE(is_semimodular(g));
    EXPECT_TRUE(is_output_semimodular(g));
    EXPECT_FALSE(conflicts[0].describe(g).empty());
}

TEST(Analysis, InternalConflictDetected) {
    // Firing input a disables output y: hazardous specification.
    const StateGraph g = read_sg(R"(
.model clash
.inputs a
.outputs y
.arcs
00 a+ 10
00 y+ 01
01 a+ 11
10 a- 00
11 y- 10
.initial 00
.end
)");
    // In state 00 both a+ and y+ excited; after a+ (state 10), y is no
    // longer excited -> internal conflict.
    bool internal = false;
    for (const auto& c : find_conflicts(g)) internal = internal || c.internal;
    EXPECT_TRUE(internal);
    EXPECT_FALSE(is_output_semimodular(g));
}

TEST(Analysis, DetonantStateFromOrCausality) {
    // OR causality: y fires after a+ OR b+. In state 000, y is stable but
    // excited in both direct successors — a detonant state (Def 3), so
    // the graph is semi-modular yet not distributive (Def 4).
    const StateGraph g = read_sg(R"(
.model det
.inputs a b
.outputs y
.arcs
000 a+ 100
000 b+ 010
100 y+ 101
100 b+ 110
010 y+ 011
010 a+ 110
110 y+ 111
101 b+ 111
011 a+ 111
.initial 000
.end
)");
    const auto dets = find_detonants(g);
    ASSERT_FALSE(dets.empty());
    EXPECT_EQ(g.signals()[dets[0].signal].name, "y");
    EXPECT_EQ(g.state_label(dets[0].state), "0*0*0");
    EXPECT_TRUE(is_output_semimodular(g));
    EXPECT_FALSE(is_output_distributive(g));
    EXPECT_FALSE(dets[0].describe(g).empty());
}

TEST(Analysis, CscViolationFound) {
    // Two states share code 10 (reached twice per cycle) and differ in
    // the excitation of output y.
    StateGraph g;
    const SignalId a = g.signals().add("a", SignalKind::Input);
    const SignalId y = g.signals().add("y", SignalKind::Output);
    auto code = [&](bool av, bool yv) {
        BitVec c(2);
        if (av) c.set(a.index());
        if (yv) c.set(y.index());
        return c;
    };
    const StateId s0 = g.add_state(code(0, 0));
    const StateId s1 = g.add_state(code(1, 0)); // y+ excited here
    const StateId s2 = g.add_state(code(1, 1));
    const StateId s3 = g.add_state(code(0, 1));
    const StateId s4 = g.add_state(code(0, 0)); // same code as s0
    const StateId s5 = g.add_state(code(1, 0)); // same code as s1; y stable
    g.add_arc(s0, s1, a);
    g.add_arc(s1, s2, y);
    g.add_arc(s2, s3, a);
    g.add_arc(s3, s4, y);
    g.add_arc(s4, s5, a);
    g.add_arc(s5, s0, a);
    g.set_initial(s0);
    ASSERT_FALSE(check_well_formed(g).has_value());
    const auto violations = find_csc_violations(g);
    ASSERT_FALSE(violations.empty());
    EXPECT_FALSE(has_unique_state_coding(g));
    EXPECT_FALSE(violations[0].describe(g).empty());
}

TEST(Dot, RendersNodesEdgesAndHighlight) {
    const StateGraph g = toggle();
    BitVec mark(g.num_states());
    mark.set(g.initial().index());
    DotOptions opts;
    opts.highlight = &mark;
    const std::string dot = to_dot(g, opts);
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("0*0"), std::string::npos);       // state label
    EXPECT_NE(dot.find("peripheries=2"), std::string::npos); // initial
    EXPECT_NE(dot.find("fillcolor=lightsalmon"), std::string::npos);
    EXPECT_NE(dot.find("label=\"+a\""), std::string::npos); // edge label
}

TEST(Paths, ShortestPathLabels) {
    const StateGraph g = toggle();
    const StateId from = g.initial();
    // Two steps away: after a+ then y+.
    const StateId mid = g.arc(g.arc_on(from, g.signals().find("a"))).to;
    const StateId to = g.arc(g.arc_on(mid, g.signals().find("y"))).to;
    const auto path = shortest_path(g, from, to);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(*path, (std::vector<std::string>{"+a", "+y"}));
    EXPECT_TRUE(shortest_path(g, from, from)->empty());
}

TEST(Paths, UnreachableIsNullopt) {
    StateGraph g;
    (void)g.signals().add("a", SignalKind::Input);
    BitVec c0(1), c1(1);
    c1.set(0);
    const StateId s0 = g.add_state(c0);
    const StateId s1 = g.add_state(c1);
    g.set_initial(s0);
    EXPECT_FALSE(shortest_path(g, s0, s1).has_value()); // no arcs at all
}

TEST(Minimize, AlreadyMinimalGraphsAreFixpoints) {
    const StateGraph g = toggle();
    MinimizeStats stats;
    const StateGraph m = minimize_bisimulation(g, &stats);
    EXPECT_EQ(m.num_states(), g.num_states());
    EXPECT_EQ(stats.states_before, stats.states_after);
    EXPECT_TRUE(check_projection(m, g).ok);
}

TEST(Minimize, MergesDuplicateStates) {
    // Two markings with the same code and identical futures: the cycle
    // visits code 10 twice with y+ excited both times.
    StateGraph g;
    const SignalId a = g.signals().add("a", SignalKind::Input);
    const SignalId y = g.signals().add("y", SignalKind::Output);
    auto code = [&](bool av, bool yv) {
        BitVec c(2);
        if (av) c.set(a.index());
        if (yv) c.set(y.index());
        return c;
    };
    // 00 -a+-> 10 -y+-> 11 -a--> 01 -a+-> 11' ... build duplicate pair
    // (11, y excited? no). Simpler: duplicate an entire half cycle.
    const StateId s0 = g.add_state(code(0, 0));
    const StateId s1 = g.add_state(code(1, 0));
    const StateId s2 = g.add_state(code(1, 1));
    const StateId s3 = g.add_state(code(0, 1));
    const StateId s4 = g.add_state(code(0, 0)); // same code+future as s0
    const StateId s5 = g.add_state(code(1, 0)); // same as s1
    g.add_arc(s0, s1, a);
    g.add_arc(s1, s2, y);
    g.add_arc(s2, s3, a);
    g.add_arc(s3, s4, y);
    g.add_arc(s4, s5, a);
    g.add_arc(s5, s2, y);
    g.set_initial(s0);
    ASSERT_FALSE(check_well_formed(g).has_value());

    MinimizeStats stats;
    const StateGraph m = minimize_bisimulation(g, &stats);
    EXPECT_EQ(stats.states_before, 6u);
    EXPECT_EQ(m.num_states(), 4u);
    EXPECT_TRUE(check_projection(m, g).ok);
    EXPECT_TRUE(check_projection(g, m).ok);
}

TEST(Minimize, KeepsCscDistinctions) {
    // Same code but different futures must NOT merge.
    StateGraph g;
    const SignalId a = g.signals().add("a", SignalKind::Input);
    const SignalId y = g.signals().add("y", SignalKind::Output);
    const SignalId z = g.signals().add("z", SignalKind::Output);
    auto code = [&](bool av, bool yv, bool zv) {
        BitVec c(3);
        if (av) c.set(a.index());
        if (yv) c.set(y.index());
        if (zv) c.set(z.index());
        return c;
    };
    const StateId s0 = g.add_state(code(0, 0, 0));
    const StateId s1 = g.add_state(code(1, 0, 0)); // y+ next
    const StateId s2 = g.add_state(code(1, 1, 0));
    const StateId s3 = g.add_state(code(0, 1, 0));
    const StateId s4 = g.add_state(code(0, 0, 0)); // same code as s0, z+ next... via different path
    const StateId s5 = g.add_state(code(1, 0, 0)); // same code as s1 but z+ next
    const StateId s6 = g.add_state(code(1, 0, 1));
    const StateId s7 = g.add_state(code(0, 0, 1));
    g.add_arc(s0, s1, a);
    g.add_arc(s1, s2, y);
    g.add_arc(s2, s3, a);
    g.add_arc(s3, s4, y);
    g.add_arc(s4, s5, a);
    g.add_arc(s5, s6, z);
    g.add_arc(s6, s7, a);
    g.add_arc(s7, s0, z);
    g.set_initial(s0);
    const StateGraph m = minimize_bisimulation(g);
    EXPECT_EQ(m.num_states(), 8u); // nothing merges: futures differ
}

TEST(Analysis, WellFormedChecks) {
    const StateGraph g = toggle();
    EXPECT_FALSE(check_well_formed(g).has_value());
    StateGraph empty;
    EXPECT_TRUE(check_well_formed(empty).has_value());
}

} // namespace
} // namespace si::sg
