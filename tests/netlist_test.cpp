// Netlist structure, gate semantics, the standard C-/RS-implementation
// builders and the printers.
#include <gtest/gtest.h>

#include "si/bench_stgs/figures.hpp"
#include "si/netlist/builder.hpp"
#include "si/netlist/netlist.hpp"
#include "si/netlist/print.hpp"
#include "si/sg/read_sg.hpp"
#include "si/util/error.hpp"

namespace si::net {
namespace {

SignalTable rin_aout() {
    SignalTable t;
    t.add("r", SignalKind::Input);
    t.add("a", SignalKind::Output);
    return t;
}

TEST(Netlist, GateSemantics) {
    const SignalTable sigs = rin_aout();
    Netlist nl(sigs);
    const GateId in = nl.add_gate(GateKind::Input, "r", {});
    const GateId inv = nl.add_gate(GateKind::Not, "ri", {{in, false}});
    const GateId andg = nl.add_gate(GateKind::And, "t", {{in, false}, {inv, true}});
    const GateId org = nl.add_gate(GateKind::Or, "u", {{in, false}, {inv, false}});
    const GateId nor = nl.add_gate(GateKind::Nor, "n", {{in, false}, {inv, false}});
    const GateId c = nl.add_gate(GateKind::CElement, "q", {{in, false}, {inv, false}});
    const GateId rs = nl.add_gate(GateKind::RsLatch, "p", {{in, false}, {inv, false}});
    const GateId w = nl.add_gate(GateKind::Wire, "w", {{in, true}});

    BitVec v(nl.num_gates());
    // r=0, ri=1 (already consistent).
    v.set(inv.index());
    EXPECT_FALSE(nl.target_value(in, v));             // inputs hold
    EXPECT_TRUE(nl.target_value(inv, v));             // !r
    EXPECT_FALSE(nl.target_value(andg, v));           // r AND !ri = 0 AND 0
    EXPECT_TRUE(nl.target_value(org, v));             // r OR ri
    EXPECT_FALSE(nl.target_value(nor, v));            // !(0|1)
    EXPECT_FALSE(nl.target_value(c, v));              // C(0,1) holds 0
    EXPECT_FALSE(nl.target_value(rs, v));             // S=0,R=1 resets
    EXPECT_TRUE(nl.target_value(w, v));               // !r

    // C-element truth: rises only when both inputs 1, falls when both 0.
    v.set(in.index());                                 // r=1, ri=1 (stale inverter)
    EXPECT_TRUE(nl.target_value(c, v));
    v.set(c.index());
    v.reset(in.index());                               // r=0, ri=1: C holds
    EXPECT_TRUE(nl.target_value(c, v));
    v.reset(inv.index());                              // both 0: C falls
    EXPECT_FALSE(nl.target_value(c, v));

    // RS latch: S=1,R=0 sets; S=R=0 holds; S=R=1 holds (documented).
    BitVec u(nl.num_gates());
    u.set(in.index()); // S=1, R=0
    EXPECT_TRUE(nl.target_value(rs, u));
    u.reset(in.index());
    u.set(rs.index()); // hold at 1
    EXPECT_TRUE(nl.target_value(rs, u));
    u.set(in.index());
    u.set(inv.index()); // S=R=1: hold
    EXPECT_TRUE(nl.target_value(rs, u));
}

TEST(Netlist, FaninArityChecked) {
    Netlist nl(rin_aout());
    const GateId in = nl.add_gate(GateKind::Input, "r", {});
    EXPECT_THROW(nl.add_gate(GateKind::Not, "x", {{in, false}, {in, false}}), InternalError);
    EXPECT_THROW(nl.add_gate(GateKind::CElement, "x", {{in, false}}), InternalError);
    EXPECT_THROW(nl.add_gate(GateKind::And, "x", {}), InternalError);
}

TEST(Netlist, InitialValuesRelaxCombinational) {
    Netlist nl(rin_aout());
    const GateId in = nl.add_gate(GateKind::Input, "r", {});
    nl.gate(in).initial_value = true;
    const GateId inv = nl.add_gate(GateKind::Not, "ri", {{in, false}});
    const GateId andg = nl.add_gate(GateKind::And, "t", {{in, false}, {inv, true}});
    const BitVec v = nl.initial_values();
    EXPECT_TRUE(v.test(in.index()));
    EXPECT_FALSE(v.test(inv.index()));
    EXPECT_TRUE(v.test(andg.index())); // r AND !ri = 1 AND 1
}

TEST(Netlist, UnstableRingRejected) {
    Netlist nl(rin_aout());
    // A combinational ring of three inverters cannot stabilize.
    const GateId a = nl.add_placeholder(GateKind::Not, "n1");
    const GateId b = nl.add_gate(GateKind::Not, "n2", {{a, false}});
    const GateId c = nl.add_gate(GateKind::Not, "n3", {{b, false}});
    nl.set_fanins(a, {{c, false}});
    EXPECT_THROW((void)nl.initial_values(), SpecError);
}

TEST(Builder, DegenerateSimplifications) {
    // A handshake where both excitation functions are single literals:
    // with simplification there is no AND or OR gate at all.
    const auto g = sg::read_sg(R"(
.model hs
.inputs r
.outputs a
.arcs
00 r+ 10
10 a+ 11
11 r- 01
01 a- 00
.initial 00
.end
)");
    const SignalId a = g.signals().find("a");
    std::vector<SignalNetwork> nets(1);
    nets[0].signal = a;
    Cube up(2), down(2);
    up.set_lit(g.signals().find("r"), Lit::One);
    down.set_lit(g.signals().find("r"), Lit::Zero);
    nets[0].up_cubes = {up};
    nets[0].down_cubes = {down};

    const Netlist nl = build_standard_implementation(g, nets);
    const auto s = nl.stats();
    EXPECT_EQ(s.and_gates, 0u);
    EXPECT_EQ(s.or_gates, 0u);
    EXPECT_EQ(s.c_elements, 1u);

    BuildOptions no_simplify;
    no_simplify.simplify_degenerate = false;
    const Netlist nl2 = build_standard_implementation(g, nets, no_simplify);
    EXPECT_EQ(nl2.stats().and_gates, 2u);
    EXPECT_EQ(nl2.stats().or_gates, 2u);
}

TEST(Builder, RsArchitectureUsesLatches) {
    const auto g = sg::read_sg(R"(
.model hs
.inputs r
.outputs a
.arcs
00 r+ 10
10 a+ 11
11 r- 01
01 a- 00
.initial 00
.end
)");
    std::vector<SignalNetwork> nets(1);
    nets[0].signal = g.signals().find("a");
    Cube up(2), down(2);
    up.set_lit(g.signals().find("r"), Lit::One);
    down.set_lit(g.signals().find("r"), Lit::Zero);
    nets[0].up_cubes = {up};
    nets[0].down_cubes = {down};
    BuildOptions rs;
    rs.use_rs_latches = true;
    const Netlist nl = build_standard_implementation(g, nets, rs);
    EXPECT_EQ(nl.stats().rs_latches, 1u);
    EXPECT_EQ(nl.stats().c_elements, 0u);
}

TEST(Builder, MissingCubesRejected) {
    const auto g = sg::read_sg(R"(
.model hs
.inputs r
.outputs a
.arcs
00 r+ 10
10 a+ 11
11 r- 01
01 a- 00
.initial 00
.end
)");
    std::vector<SignalNetwork> nets(1);
    nets[0].signal = g.signals().find("a");
    Cube up(2);
    up.set_lit(g.signals().find("r"), Lit::One);
    nets[0].up_cubes = {up}; // no down cubes
    EXPECT_THROW((void)build_standard_implementation(g, nets), SynthesisError);
}

TEST(Builder, SharedGateDeduplication) {
    // Two outputs with the same up-cube share one AND gate when sharing
    // is enabled.
    const auto g = sg::read_sg(R"(
.model share
.inputs r s
.outputs a b
.arcs
0000 r+ 1000
1000 s+ 1100
1100 a+ 1110
1110 b+ 1111
1111 r- 0111
0111 s- 0011
0011 a- 0001
0001 b- 0000
.initial 0000
.end
)");
    std::vector<SignalNetwork> nets(2);
    Cube up(4), down(4);
    up.set_lit(g.signals().find("r"), Lit::One);
    up.set_lit(g.signals().find("s"), Lit::One);
    down.set_lit(g.signals().find("r"), Lit::Zero);
    down.set_lit(g.signals().find("s"), Lit::Zero);
    nets[0].signal = g.signals().find("a");
    nets[0].up_cubes = {up};
    nets[0].down_cubes = {down};
    nets[1].signal = g.signals().find("b");
    nets[1].up_cubes = {up};
    nets[1].down_cubes = {down};

    BuildOptions shared;
    shared.share_gates = true;
    EXPECT_EQ(build_standard_implementation(g, nets, shared).stats().and_gates, 2u);
    BuildOptions owned;
    owned.share_gates = false;
    EXPECT_EQ(build_standard_implementation(g, nets, owned).stats().and_gates, 4u);
}

TEST(Print, EquationsContainAllGates) {
    const auto g = bench::figure4();
    Netlist nl(g.signals());
    const SignalId a = g.signals().find("a"), b = g.signals().find("b"),
                   c = g.signals().find("c"), d = g.signals().find("d");
    const GateId ga = nl.add_gate(GateKind::Input, "a", {}, a);
    const GateId gc = nl.add_gate(GateKind::Input, "c", {}, c);
    const GateId gd = nl.add_gate(GateKind::Input, "d", {}, d);
    const GateId t = nl.add_gate(GateKind::And, "t", {{gc, true}, {gd, false}});
    nl.add_gate(GateKind::Or, "b", {{ga, false}, {t, false}}, b);
    const std::string eq = to_equations(nl);
    EXPECT_NE(eq.find("t = c' d"), std::string::npos);
    EXPECT_NE(eq.find("b = a + t"), std::string::npos);
}

TEST(Print, VerilogStructure) {
    const auto g = bench::figure1();
    std::vector<SignalNetwork> nets;
    // Build something real via the whole path: use fig1's signals with
    // dummy single-literal functions for c and d just to exercise export.
    SignalNetwork nc;
    nc.signal = g.signals().find("c");
    Cube up(4), down(4);
    up.set_lit(g.signals().find("a"), Lit::One);
    down.set_lit(g.signals().find("a"), Lit::Zero);
    nc.up_cubes = {up};
    nc.down_cubes = {down};
    SignalNetwork nd = nc;
    nd.signal = g.signals().find("d");
    nets = {nc, nd};
    const Netlist nl = build_standard_implementation(g, nets);
    const std::string v = to_verilog(nl);
    EXPECT_NE(v.find("module celem"), std::string::npos);
    EXPECT_NE(v.find("module fig1-c"), std::string::npos);
    EXPECT_NE(v.find("input a"), std::string::npos);
}

TEST(Builder, InverterConstraintReport) {
    const auto g = bench::figure1();
    SignalNetwork nc;
    nc.signal = g.signals().find("c");
    Cube up(4), down(4);
    up.set_lit(g.signals().find("a"), Lit::One);
    up.set_lit(g.signals().find("b"), Lit::Zero);
    down.set_lit(g.signals().find("a"), Lit::Zero);
    nc.up_cubes = {up};
    nc.down_cubes = {down};
    SignalNetwork nd = nc;
    nd.signal = g.signals().find("d");
    const Netlist nl = build_standard_implementation(g, {nc, nd});
    const auto report = inverter_constraint(nl);
    EXPECT_EQ(report.signal_networks, 2u);
    EXPECT_GT(report.input_inversions, 0u);
    EXPECT_NE(report.describe().find("d_inv^max < D_sn^min"), std::string::npos);
}

} // namespace
} // namespace si::net
