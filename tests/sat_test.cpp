// CDCL solver tests: hand-built instances, encoder helpers, and random
// 3-SAT cross-checked against exhaustive enumeration.
#include <gtest/gtest.h>

#include <random>

#include "si/sat/solver.hpp"

namespace si::sat {
namespace {

TEST(Sat, TrivialSatAndModel) {
    Solver s;
    const Var a = s.new_var();
    const Var b = s.new_var();
    ASSERT_TRUE(s.add_clause({pos(a), pos(b)}));
    ASSERT_TRUE(s.add_clause({neg(a)}));
    ASSERT_EQ(s.solve(), Result::Sat);
    EXPECT_FALSE(s.model_value(a));
    EXPECT_TRUE(s.model_value(b));
}

TEST(Sat, EmptyClauseUnsat) {
    Solver s;
    (void)s.new_var();
    EXPECT_FALSE(s.add_clause(std::initializer_list<Lit>{}));
    EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(Sat, ContradictingUnitsUnsat) {
    Solver s;
    const Var a = s.new_var();
    ASSERT_TRUE(s.add_unit(pos(a)));
    EXPECT_FALSE(s.add_unit(neg(a)));
    EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(Sat, TautologicalClauseIgnored) {
    Solver s;
    const Var a = s.new_var();
    ASSERT_TRUE(s.add_clause({pos(a), neg(a)}));
    EXPECT_EQ(s.solve(), Result::Sat);
}

TEST(Sat, PigeonHole3Into2IsUnsat) {
    // Classic PHP(3,2): forces real conflict analysis.
    Solver s;
    Var p[3][2];
    for (auto& row : p)
        for (auto& v : row) v = s.new_var();
    for (int i = 0; i < 3; ++i) s.add_clause({pos(p[i][0]), pos(p[i][1])});
    for (int h = 0; h < 2; ++h)
        for (int i = 0; i < 3; ++i)
            for (int j = i + 1; j < 3; ++j) s.add_clause({neg(p[i][h]), neg(p[j][h])});
    EXPECT_EQ(s.solve(), Result::Unsat);
    EXPECT_GT(s.conflicts(), 0u);
}

TEST(Sat, AndEncoder) {
    Solver s;
    const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
    ASSERT_TRUE(s.add_and(pos(a), pos(b), pos(c)));
    ASSERT_TRUE(s.add_unit(pos(a)));
    ASSERT_EQ(s.solve(), Result::Sat);
    EXPECT_TRUE(s.model_value(b));
    EXPECT_TRUE(s.model_value(c));
}

TEST(Sat, AtMostOne) {
    Solver s;
    std::vector<Lit> lits;
    for (int i = 0; i < 4; ++i) lits.push_back(pos(s.new_var()));
    ASSERT_TRUE(s.add_at_most_one(lits));
    ASSERT_TRUE(s.add_clause(std::span<const Lit>(lits.data(), lits.size())));
    ASSERT_EQ(s.solve(), Result::Sat);
    int count = 0;
    for (const auto l : lits) count += s.model_value(l.var()) ? 1 : 0;
    EXPECT_EQ(count, 1);
}

TEST(Sat, AssumptionsRestrictAndRelease) {
    Solver s;
    const Var a = s.new_var(), b = s.new_var();
    ASSERT_TRUE(s.add_clause({pos(a), pos(b)}));
    const Lit na = neg(a), nb = neg(b);
    const Lit both[] = {na, nb};
    EXPECT_EQ(s.solve(std::span<const Lit>(both, 2)), Result::Unsat);
    EXPECT_EQ(s.solve(std::span<const Lit>(both, 1)), Result::Sat);
    EXPECT_TRUE(s.model_value(b));
    EXPECT_EQ(s.solve(), Result::Sat); // no assumptions: still satisfiable
}

TEST(Sat, IncrementalBlockingEnumeratesAllModels) {
    Solver s;
    std::vector<Var> vars;
    for (int i = 0; i < 3; ++i) vars.push_back(s.new_var());
    int models = 0;
    while (s.solve() == Result::Sat) {
        ++models;
        std::vector<Lit> block;
        for (const Var v : vars) block.push_back(s.model_value(v) ? neg(v) : pos(v));
        s.add_clause(std::span<const Lit>(block.data(), block.size()));
        ASSERT_LE(models, 8);
    }
    EXPECT_EQ(models, 8);
}

TEST(Sat, ConflictBudgetReturnsUnknown) {
    // A hard PHP instance with a tiny budget must give up cleanly.
    Solver s;
    constexpr int N = 8;
    Var p[N][N - 1];
    for (auto& row : p)
        for (auto& v : row) v = s.new_var();
    for (int i = 0; i < N; ++i) {
        std::vector<Lit> c;
        for (int h = 0; h < N - 1; ++h) c.push_back(pos(p[i][h]));
        s.add_clause(std::span<const Lit>(c.data(), c.size()));
    }
    for (int h = 0; h < N - 1; ++h)
        for (int i = 0; i < N; ++i)
            for (int j = i + 1; j < N; ++j) s.add_clause({neg(p[i][h]), neg(p[j][h])});
    s.set_conflict_budget(50);
    EXPECT_EQ(s.solve(), Result::Unknown);
}

// Random 3-SAT cross-check against exhaustive enumeration.
class RandomSat : public ::testing::TestWithParam<int> {};

TEST_P(RandomSat, MatchesBruteForce) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()));
    const std::size_t nvars = 3 + rng() % 10;          // 3..12
    const std::size_t nclauses = 2 + rng() % (4 * nvars);

    std::vector<std::vector<Lit>> clauses;
    for (std::size_t i = 0; i < nclauses; ++i) {
        std::vector<Lit> cl;
        const std::size_t len = 1 + rng() % 3;
        for (std::size_t j = 0; j < len; ++j)
            cl.push_back(Lit(static_cast<Var>(rng() % nvars), rng() % 2 == 0));
        clauses.push_back(std::move(cl));
    }

    bool brute_sat = false;
    for (std::size_t m = 0; m < (std::size_t(1) << nvars) && !brute_sat; ++m) {
        bool all = true;
        for (const auto& cl : clauses) {
            bool any = false;
            for (const auto l : cl) {
                const bool val = ((m >> l.var()) & 1u) != 0;
                if (val != l.negative()) any = true;
            }
            if (!any) all = false;
        }
        brute_sat = all;
    }

    Solver s;
    for (std::size_t v = 0; v < nvars; ++v) (void)s.new_var();
    bool consistent = true;
    for (const auto& cl : clauses)
        consistent = s.add_clause(std::span<const Lit>(cl.data(), cl.size())) && consistent;
    const Result r = s.solve();
    EXPECT_EQ(r == Result::Sat, brute_sat);
    if (r == Result::Sat) {
        // The model must actually satisfy every clause.
        for (const auto& cl : clauses) {
            bool any = false;
            for (const auto l : cl)
                if (s.model_value(l.var()) != l.negative()) any = true;
            EXPECT_TRUE(any);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSat, ::testing::Range(0, 60));

} // namespace
} // namespace si::sat
