// Unit tests for cube algebra and covers, cross-checked against
// brute-force truth-table evaluation on small variable counts.
#include <gtest/gtest.h>

#include <random>

#include "si/boolean/cover.hpp"
#include "si/boolean/cube.hpp"
#include "si/util/error.hpp"

namespace si {
namespace {

BitVec code_of(std::size_t bits, std::size_t n) {
    BitVec v(n);
    for (std::size_t i = 0; i < n; ++i)
        if ((bits >> i) & 1u) v.set(i);
    return v;
}

// Enumerates all minterms of an n-variable cube.
std::vector<std::size_t> minterms_of(const Cube& c) {
    std::vector<std::size_t> out;
    const std::size_t n = c.num_vars();
    for (std::size_t m = 0; m < (std::size_t(1) << n); ++m)
        if (c.contains_minterm(code_of(m, n))) out.push_back(m);
    return out;
}

Cube random_cube(std::mt19937& rng, std::size_t n) {
    Cube c(n);
    for (std::size_t i = 0; i < n; ++i) {
        switch (rng() % 3) {
        case 0: c.set_lit(SignalId(i), Lit::Zero); break;
        case 1: c.set_lit(SignalId(i), Lit::One); break;
        default: break;
        }
    }
    return c;
}

TEST(Cube, ParseAndPrint) {
    const Cube c = Cube::from_string("1-0");
    EXPECT_EQ(c.lit(SignalId(0)), Lit::One);
    EXPECT_EQ(c.lit(SignalId(1)), Lit::Dash);
    EXPECT_EQ(c.lit(SignalId(2)), Lit::Zero);
    EXPECT_EQ(c.to_string(), "1-0");
    EXPECT_EQ(c.literal_count(), 2u);
    EXPECT_THROW(Cube::from_string("1x0"), ParseError);
}

TEST(Cube, UniversalAndMinterm) {
    const Cube u(4);
    EXPECT_TRUE(u.is_universal());
    EXPECT_EQ(minterms_of(u).size(), 16u);
    const Cube m = Cube::minterm(code_of(0b1010, 4));
    EXPECT_EQ(minterms_of(m), std::vector<std::size_t>{0b1010});
}

TEST(Cube, ContainsMinterm) {
    const Cube c = Cube::from_string("1-0-");
    EXPECT_TRUE(c.contains_minterm(code_of(0b0001, 4)));  // bit0=a=1, bit2=c=0
    EXPECT_TRUE(c.contains_minterm(code_of(0b1001, 4)));
    EXPECT_FALSE(c.contains_minterm(code_of(0b0000, 4)));
    EXPECT_FALSE(c.contains_minterm(code_of(0b0101, 4)));
}

TEST(Cube, CoversIsMintermContainment) {
    std::mt19937 rng(11);
    for (int trial = 0; trial < 200; ++trial) {
        const std::size_t n = 4;
        const Cube a = random_cube(rng, n);
        const Cube b = random_cube(rng, n);
        const auto ma = minterms_of(a);
        const auto mb = minterms_of(b);
        const bool contained = std::includes(ma.begin(), ma.end(), mb.begin(), mb.end());
        EXPECT_EQ(a.covers(b), contained) << a.to_string() << " vs " << b.to_string();
    }
}

TEST(Cube, IntersectMatchesMintermIntersection) {
    std::mt19937 rng(13);
    for (int trial = 0; trial < 200; ++trial) {
        const std::size_t n = 4;
        const Cube a = random_cube(rng, n);
        const Cube b = random_cube(rng, n);
        const auto isec = a.intersect(b);
        std::vector<std::size_t> expect;
        const auto ma = minterms_of(a);
        const auto mb = minterms_of(b);
        std::set_intersection(ma.begin(), ma.end(), mb.begin(), mb.end(),
                              std::back_inserter(expect));
        if (expect.empty()) {
            EXPECT_FALSE(isec.has_value());
            EXPECT_FALSE(a.intersects(b));
        } else {
            ASSERT_TRUE(isec.has_value());
            EXPECT_EQ(minterms_of(*isec), expect);
            EXPECT_TRUE(a.intersects(b));
        }
    }
}

TEST(Cube, DistanceCountsOppositions) {
    const Cube a = Cube::from_string("10-1");
    const Cube b = Cube::from_string("01-1");
    EXPECT_EQ(a.distance(b), 2u);
    EXPECT_EQ(a.distance(a), 0u);
    EXPECT_EQ(Cube(4).distance(a), 0u);
}

TEST(Cube, SupercubeIsSmallestCommonCover) {
    std::mt19937 rng(17);
    for (int trial = 0; trial < 100; ++trial) {
        const Cube a = random_cube(rng, 4);
        const Cube b = random_cube(rng, 4);
        const Cube s = a.supercube(b);
        EXPECT_TRUE(s.covers(a));
        EXPECT_TRUE(s.covers(b));
        // Minimality: no literal of s can be re-added (any strictly
        // smaller cube with one more literal misses a or b).
        for (std::size_t v = 0; v < 4; ++v) {
            if (s.lit(SignalId(v)) != Lit::Dash) continue;
            for (const Lit l : {Lit::Zero, Lit::One}) {
                Cube t = s;
                t.set_lit(SignalId(v), l);
                EXPECT_FALSE(t.covers(a) && t.covers(b));
            }
        }
    }
}

TEST(Cube, ConsensusDefinedAtDistanceOne) {
    const Cube a = Cube::from_string("11-");
    const Cube b = Cube::from_string("0-1");
    const auto c = a.consensus(b); // oppose in var0
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->to_string(), "-11");
    EXPECT_FALSE(a.consensus(a).has_value());           // distance 0
    const Cube d = Cube::from_string("00-");
    EXPECT_FALSE(a.consensus(d).has_value());           // distance 2
}

TEST(Cube, SharpIsSetDifference) {
    std::mt19937 rng(19);
    for (int trial = 0; trial < 200; ++trial) {
        const Cube a = random_cube(rng, 4);
        const Cube b = random_cube(rng, 4);
        const auto pieces = a.sharp(b);
        // Union of pieces == minterms(a) \ minterms(b), pieces disjoint.
        std::vector<std::size_t> got;
        for (const auto& p : pieces) {
            const auto mp = minterms_of(p);
            got.insert(got.end(), mp.begin(), mp.end());
        }
        std::sort(got.begin(), got.end());
        EXPECT_TRUE(std::adjacent_find(got.begin(), got.end()) == got.end()) << "overlap";
        std::vector<std::size_t> expect;
        const auto ma = minterms_of(a);
        const auto mb = minterms_of(b);
        std::set_difference(ma.begin(), ma.end(), mb.begin(), mb.end(),
                            std::back_inserter(expect));
        EXPECT_EQ(got, expect);
    }
}

TEST(Cube, CofactorSemantics) {
    const Cube c = Cube::from_string("1-0");
    EXPECT_FALSE(c.cofactor(SignalId(0), false).has_value());
    EXPECT_EQ(c.cofactor(SignalId(0), true)->to_string(), "--0");
    EXPECT_EQ(c.cofactor(SignalId(1), true)->to_string(), "1-0");
}

TEST(Cube, ExprRendering) {
    const std::vector<std::string> names{"a", "b", "c"};
    EXPECT_EQ(Cube::from_string("1-0").to_expr(names), "a c'");
    EXPECT_EQ(Cube(3).to_expr(names), "1");
}

TEST(Cover, EvalMatchesCubes) {
    Cover f(3);
    f.add(Cube::from_string("1--"));
    f.add(Cube::from_string("-11"));
    EXPECT_TRUE(f.eval(code_of(0b001, 3)));
    EXPECT_TRUE(f.eval(code_of(0b110, 3)));
    EXPECT_FALSE(f.eval(code_of(0b010, 3)));
    EXPECT_EQ(f.to_expr({"a", "b", "c"}), "a + b c");
    EXPECT_EQ(Cover(3).to_expr({"a", "b", "c"}), "0");
}

TEST(Cover, TautologyBruteForce) {
    std::mt19937 rng(23);
    for (int trial = 0; trial < 100; ++trial) {
        const std::size_t n = 4;
        Cover f(n);
        const std::size_t k = 1 + rng() % 5;
        for (std::size_t i = 0; i < k; ++i) f.add(random_cube(rng, n));
        bool taut = true;
        for (std::size_t m = 0; m < 16; ++m)
            if (!f.eval(code_of(m, n))) taut = false;
        EXPECT_EQ(f.is_tautology(), taut);
    }
}

TEST(Cover, CoversCubeBruteForce) {
    std::mt19937 rng(29);
    for (int trial = 0; trial < 150; ++trial) {
        const std::size_t n = 4;
        Cover f(n);
        const std::size_t k = 1 + rng() % 4;
        for (std::size_t i = 0; i < k; ++i) f.add(random_cube(rng, n));
        const Cube c = random_cube(rng, n);
        bool covered = true;
        for (const auto m : minterms_of(c))
            if (!f.eval(code_of(m, n))) covered = false;
        EXPECT_EQ(f.covers_cube(c), covered);
    }
}

TEST(Cover, ComplementBruteForce) {
    std::mt19937 rng(31);
    for (int trial = 0; trial < 100; ++trial) {
        const std::size_t n = 4;
        Cover f(n);
        const std::size_t k = rng() % 4;
        for (std::size_t i = 0; i < k; ++i) f.add(random_cube(rng, n));
        const Cover g = f.complement();
        for (std::size_t m = 0; m < 16; ++m)
            EXPECT_NE(f.eval(code_of(m, n)), g.eval(code_of(m, n)));
    }
}

TEST(Cover, RemoveContainedKeepsFunction) {
    Cover f(3);
    f.add(Cube::from_string("1--"));
    f.add(Cube::from_string("11-")); // contained
    f.add(Cube::from_string("11-")); // duplicate
    f.add(Cube::from_string("-01"));
    f.remove_contained();
    EXPECT_EQ(f.size(), 2u);
    EXPECT_TRUE(f.eval(code_of(0b011, 3)));
}

TEST(Cover, LiteralCount) {
    Cover f(3);
    f.add(Cube::from_string("1-0"));
    f.add(Cube::from_string("-1-"));
    EXPECT_EQ(f.literal_count(), 3u);
}

} // namespace
} // namespace si
